(* wjcli — command-line front end for the wander join engine.

   Subcommands:
     query     run a SQL statement (ONLINE or exact) against TPC-H data
     tpch      run one of the paper's benchmark queries with wander join
     plans     show the enumerated walk plans and the optimizer's choice
     groupby   per-group online aggregation, plain or stratified
     suggest   cardinality-guided full-join order for a benchmark query

   Data comes from the built-in deterministic generator (--sf) or from
   official dbgen .tbl files (--tbl-dir). *)

open Cmdliner

let sf_arg =
  let doc = "TPC-H scale factor (1.0 = 1.5M orders; 0.01 is a quick demo)." in
  Arg.(value & opt float 0.01 & info [ "sf" ] ~docv:"SF" ~doc)

let seed_arg =
  let doc = "Random seed for data generation and sampling." in
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)

let tbl_dir_arg =
  let doc = "Load official dbgen .tbl files from this directory instead of generating." in
  Arg.(value & opt (some dir) None & info [ "tbl-dir" ] ~docv:"DIR" ~doc)

(* --- metrics ---------------------------------------------------------- *)

let metrics_arg =
  let doc = "Collect walk/driver/index observability metrics and print a snapshot." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let metrics_json_arg =
  let doc = "Write the metrics snapshot as JSON to $(docv) (implies --metrics)." in
  Arg.(value & opt (some string) None & info [ "metrics-json" ] ~docv:"FILE" ~doc)

(* When collection is on, hand the run a metrics-backed sink; afterwards
   render the snapshot (and optionally dump it as JSON). *)
let metrics_sink ~metrics ~json =
  if metrics || json <> None then begin
    let m = Wj_obs.Metrics.create () in
    (Wj_obs.Sink.of_metrics m, Some m)
  end
  else (Wj_obs.Sink.noop, None)

let metrics_finish ~json m_opt =
  match m_opt with
  | None -> ()
  | Some m ->
    let snap = Wj_obs.Snapshot.of_metrics m in
    print_string (Wj_obs.Snapshot.render snap);
    (match json with
    | None -> ()
    | Some file ->
      Out_channel.with_open_text file (fun oc ->
          output_string oc (Wj_obs.Snapshot.to_json snap);
          output_char oc '\n');
      Printf.printf "metrics JSON written to %s\n" file)

let load sf seed tbl_dir =
  match tbl_dir with
  | Some dir ->
    Printf.printf "Loading dbgen .tbl files from %s ...\n%!" dir;
    let d = Wj_tpch.Tbl_loader.load_dir dir in
    Printf.printf "  %d rows total (inferred SF %.3g)\n%!"
      (Wj_tpch.Generator.total_rows d) d.sf;
    d
  | None ->
    Printf.printf "Generating TPC-H data at SF %g (seed %d)...\n%!" sf seed;
    let d = Wj_tpch.Generator.generate ~seed ~sf () in
    Printf.printf "  %d rows total\n%!" (Wj_tpch.Generator.total_rows d);
    d

(* --- query ------------------------------------------------------------ *)

let query_cmd =
  let sql_arg =
    let doc = "The SQL statement to execute." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)
  in
  let run sf seed tbl_dir metrics json sql =
    let d = load sf seed tbl_dir in
    let catalog = Wj_tpch.Generator.catalog d in
    let sink, m_opt = metrics_sink ~metrics ~json in
    match Wj_sql.Engine.execute ~seed ~sink ~on_report:print_endline catalog sql with
    | r ->
      print_string (Wj_sql.Engine.render r);
      metrics_finish ~json m_opt;
      0
    | exception Wj_sql.Lexer.Lex_error (msg, off) ->
      Printf.eprintf "lex error at offset %d: %s\n" off msg;
      1
    | exception Wj_sql.Parser.Parse_error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      1
    | exception Wj_sql.Binder.Bind_error msg ->
      Printf.eprintf "bind error: %s\n" msg;
      1
  in
  let doc = "Execute a SQL statement (use SELECT ONLINE for online aggregation)." in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const run $ sf_arg $ seed_arg $ tbl_dir_arg $ metrics_arg $ metrics_json_arg
      $ sql_arg)

(* --- tpch ------------------------------------------------------------- *)

let spec_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "q3" -> Ok Wj_tpch.Queries.Q3
    | "q7" -> Ok Wj_tpch.Queries.Q7
    | "q10" -> Ok Wj_tpch.Queries.Q10
    | _ -> Error (`Msg "expected q3, q7 or q10")
  in
  let print fmt s = Format.fprintf fmt "%s" (Wj_tpch.Queries.name_of s) in
  Arg.conv (parse, print)

let spec_arg =
  let doc = "Benchmark query: q3, q7 or q10." in
  Arg.(required & pos 0 (some spec_conv) None & info [] ~docv:"QUERY" ~doc)

let tpch_cmd =
  let barebone_arg =
    let doc = "Drop the selection predicates (barebone join)." in
    Arg.(value & flag & info [ "barebone" ] ~doc)
  in
  let time_arg =
    let doc = "Time budget in seconds." in
    Arg.(value & opt float 5.0 & info [ "time" ] ~docv:"SECONDS" ~doc)
  in
  let target_arg =
    let doc = "Stop at this relative confidence half-width, in percent." in
    Arg.(value & opt (some float) None & info [ "target" ] ~docv:"PCT" ~doc)
  in
  let exact_arg =
    let doc = "Also run the exact join and report the actual error." in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let complete_arg =
    let doc =
      "Run-to-completion mode: race wander join against the full join in a \
       second domain and return the exact answer when it lands."
    in
    Arg.(value & flag & info [ "complete" ] ~doc)
  in
  let run sf seed tbl_dir spec barebone time target exact complete metrics json =
    let d = load sf seed tbl_dir in
    let variant = if barebone then Wj_tpch.Queries.Barebone else Standard in
    let q = Wj_tpch.Queries.build ~variant spec d in
    let reg = Wj_tpch.Queries.registry q in
    let sink, m_opt = metrics_sink ~metrics ~json in
    let target = Option.map (fun pct -> Wj_stats.Target.relative (pct /. 100.0)) target in
    if complete then begin
      let r =
        Wj_exec.Complete.run ~seed ?target ~report_every:0.5
          ~on_report:(fun rep ->
            Printf.printf "[%6.2fs] estimate %.6g +/- %.4g (%d walks)\n%!" rep.elapsed
              rep.estimate rep.half_width rep.walks)
          q reg
      in
      Printf.printf "full join finished in %.3fs: exact = %.6g (join size %d)\n"
        r.exact_time r.exact.value r.exact.join_size;
      Printf.printf "online at cancellation: %.6g +/- %.4g (%d walks)\n"
        r.online.final.estimate r.online.final.half_width r.online.final.walks;
      0
    end
    else begin
      let out =
        Wj_core.Online.run ~seed ~max_time:time ?target ~report_every:1.0 ~sink
          ~on_report:(fun r ->
            Printf.printf "[%6.2fs] estimate %.6g +/- %.4g (%d walks, %d successes)\n%!"
              r.elapsed r.estimate r.half_width r.walks r.successes)
          q reg
      in
      Printf.printf "final: %.6g +/- %.4g after %.2fs (%d walks; plan %s)\n"
        out.final.estimate out.final.half_width out.final.elapsed out.final.walks
        out.plan_description;
      if exact then begin
        let e = Wj_exec.Exact.aggregate q reg in
        Printf.printf "exact: %.6g (join size %d); actual error %.4f%%\n" e.value
          e.join_size
          (100.0 *. Float.abs ((out.final.estimate -. e.value) /. e.value))
      end;
      (match m_opt with Some m -> Wj_core.Registry.export_metrics reg m | None -> ());
      metrics_finish ~json m_opt;
      0
    end
  in
  let doc = "Run a TPC-H benchmark query with wander join." in
  Cmd.v (Cmd.info "tpch" ~doc)
    Term.(
      const run $ sf_arg $ seed_arg $ tbl_dir_arg $ spec_arg $ barebone_arg $ time_arg
      $ target_arg $ exact_arg $ complete_arg $ metrics_arg $ metrics_json_arg)

(* --- plans ------------------------------------------------------------ *)

let plans_cmd =
  let run sf seed tbl_dir spec =
    let d = load sf seed tbl_dir in
    let q = Wj_tpch.Queries.build ~variant:Standard spec d in
    let reg = Wj_tpch.Queries.registry q in
    let prng = Wj_util.Prng.create seed in
    let r = Wj_core.Optimizer.choose q reg prng in
    Printf.printf "%d plans enumerated; optimizer trials: %d walks\n"
      (List.length r.reports) r.total_trial_walks;
    List.iter
      (fun (p : Wj_core.Optimizer.plan_report) ->
        Printf.printf "%s %-60s  success %4d/%-5d  Var*E[T] %.4g\n"
          (if p.chosen then "*" else " ")
          (Wj_core.Walk_plan.describe q p.plan)
          p.trial_successes p.trial_walks p.objective)
      r.reports;
    0
  in
  let doc = "Enumerate walk plans and show the optimizer's evaluation." in
  Cmd.v (Cmd.info "plans" ~doc)
    Term.(const run $ sf_arg $ seed_arg $ tbl_dir_arg $ spec_arg)

(* --- groupby ----------------------------------------------------------- *)

let groupby_cmd =
  let stratified_arg =
    let doc = "Use stratified sampling (one stratum per group, adaptive allocation)." in
    Arg.(value & flag & info [ "stratified" ] ~doc)
  in
  let time_arg =
    let doc = "Time budget in seconds." in
    Arg.(value & opt float 3.0 & info [ "time" ] ~docv:"SECONDS" ~doc)
  in
  let run sf seed tbl_dir spec stratified time =
    match spec with
    | Wj_tpch.Queries.Q7 ->
      Printf.eprintf "GROUP BY c_mktsegment is not available for Q7\n";
      1
    | _ ->
      let d = load sf seed tbl_dir in
      let q = Wj_tpch.Queries.build ~variant:Standard ~group_by_segment:true spec d in
      let reg = Wj_tpch.Queries.registry q in
      let print_report key (r : Wj_core.Online.report) extra =
        Printf.printf "  %-14s %12.6g +/- %-10.4g (%5.2f%%)%s\n"
          (Wj_storage.Value.to_display key)
          r.estimate r.half_width
          (100.0 *. r.half_width /. Float.abs r.estimate)
          extra
      in
      if stratified then begin
        (* Stratify on the dictionary-encoded segment id. *)
        let pos, _ = Option.get q.Wj_core.Query.group_by in
        let seg_id =
          Wj_storage.Table.column_index q.Wj_core.Query.tables.(pos) "c_mktsegment_id"
        in
        let q = { q with Wj_core.Query.group_by = Some (pos, seg_id) } in
        Wj_core.Registry.add reg ~pos ~column:seg_id
          (Wj_index.Index.build_ordered q.Wj_core.Query.tables.(pos) ~column:seg_id);
        let out = Wj_core.Stratified.run ~seed ~max_time:time q reg in
        Printf.printf "stratified, %d walks total:\n" out.total_walks;
        List.iter
          (fun (g : Wj_core.Stratified.group_state) ->
            let label =
              Wj_tpch.Generator.market_segments.(Wj_storage.Value.to_int g.key)
            in
            print_report (Wj_storage.Value.Str label) g.report
              (Printf.sprintf "  [%d walks]" g.report.walks))
          out.strata
      end
      else begin
        let out = Wj_core.Online.run_group_by ~seed ~max_time:time q reg in
        Printf.printf "plain group-by, %d walks total:\n" out.total_walks;
        List.iter (fun (key, r) -> print_report key r "") out.groups
      end;
      0
  in
  let doc = "Online GROUP BY c_mktsegment for a benchmark query." in
  Cmd.v (Cmd.info "groupby" ~doc)
    Term.(
      const run $ sf_arg $ seed_arg $ tbl_dir_arg $ spec_arg $ stratified_arg $ time_arg)

(* --- suggest ------------------------------------------------------------ *)

let suggest_cmd =
  let run sf seed tbl_dir spec =
    let d = load sf seed tbl_dir in
    let q = Wj_tpch.Queries.build ~variant:Standard spec d in
    let reg = Wj_tpch.Queries.registry q in
    let order, estimates = Wj_core.Cardinality.suggest_order ~seed q reg in
    Printf.printf "suggested join order: %s\n"
      (String.concat " -> "
         (Array.to_list (Array.map (fun i -> q.Wj_core.Query.names.(i)) order)));
    List.iter
      (fun (e : Wj_core.Cardinality.estimate) ->
        Printf.printf "  after {%s}: ~%.4g results (+/- %.3g, %d walks)\n"
          (String.concat ", "
             (List.map (fun i -> q.Wj_core.Query.names.(i)) e.members))
          e.size e.half_width e.walks)
      estimates;
    (match Wj_core.Walk_plan.of_order q reg order with
    | Some plan ->
      let guided = Wj_exec.Exact.aggregate ~plan q reg in
      let naive = Wj_exec.Exact.aggregate q reg in
      Printf.printf "exact execution cost: %d tuples (FROM order: %d)\n"
        guided.rows_visited naive.rows_visited
    | None -> Printf.printf "(order not walkable with current indexes)\n");
    0
  in
  let doc = "Suggest a full-join order from wander-join cardinality estimates." in
  Cmd.v (Cmd.info "suggest" ~doc)
    Term.(const run $ sf_arg $ seed_arg $ tbl_dir_arg $ spec_arg)

let () =
  let doc = "Wander join: online aggregation via random walks" in
  let info = Cmd.info "wjcli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info [ query_cmd; tpch_cmd; plans_cmd; groupby_cmd; suggest_cmd ]))
