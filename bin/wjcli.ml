(* wjcli — command-line front end for the wander join engine.

   The subcommand overview in `wjcli --help` and every flag's usage line
   are generated from the [Flag] and [commands] tables below — edit those
   tables, never a doc string elsewhere, so help cannot drift from the
   implementation.

   Data comes from the built-in deterministic generator (--sf) or from
   official dbgen .tbl files (--tbl-dir). *)

open Cmdliner

(* --- the one flag table ------------------------------------------------ *)

(* Every reusable flag is one [spec]: names, metavariable, one doc line.
   Cmdliner [Arg.info]s are built from the spec, so the --help output of
   every subcommand quotes exactly this table. *)
module Flag = struct
  type spec = { names : string list; docv : string; doc : string }

  let info { names; docv; doc } = Arg.info names ~docv ~doc

  let sf =
    {
      names = [ "sf" ];
      docv = "SF";
      doc = "TPC-H scale factor (1.0 = 1.5M orders; 0.01 is a quick demo).";
    }

  let seed =
    {
      names = [ "seed" ];
      docv = "SEED";
      doc = "Random seed for data generation and sampling.";
    }

  let tbl_dir =
    {
      names = [ "tbl-dir" ];
      docv = "DIR";
      doc = "Load official dbgen .tbl files from this directory instead of generating.";
    }

  let metrics =
    {
      names = [ "metrics" ];
      docv = "";
      doc = "Collect walk/driver/index observability metrics and print a snapshot.";
    }

  let metrics_json =
    {
      names = [ "metrics-json" ];
      docv = "FILE";
      doc = "Write the metrics snapshot as JSON to $(docv) (implies --metrics).";
    }

  let time budget =
    {
      names = [ "time" ];
      docv = "SECONDS";
      doc = Printf.sprintf "Time budget in seconds (default %g)." budget;
    }

  let target =
    {
      names = [ "target" ];
      docv = "PCT";
      doc = "Stop at this relative confidence half-width, in percent.";
    }

  let barebone =
    {
      names = [ "barebone" ];
      docv = "";
      doc = "Drop the selection predicates (barebone join).";
    }

  let exact =
    {
      names = [ "exact" ];
      docv = "";
      doc = "Also run the exact join and report the actual error.";
    }

  let complete =
    {
      names = [ "complete" ];
      docv = "";
      doc =
        "Run-to-completion mode: race wander join against the full join in a \
         second domain and return the exact answer when it lands.";
    }

  let stratified =
    {
      names = [ "stratified" ];
      docv = "";
      doc = "Use stratified sampling (one stratum per group, adaptive allocation).";
    }

  let quantum =
    {
      names = [ "quantum" ];
      docv = "STEPS";
      doc = "Scheduler quantum: engine steps granted per session turn.";
    }

  let max_live =
    {
      names = [ "max-live" ];
      docv = "N";
      doc = "Admission cap: sessions running concurrently; the rest queue FIFO.";
    }

  let domains =
    {
      names = [ "domains" ];
      docv = "N";
      doc =
        "Shard the scheduler drain across N OCaml domains (sessions are \
         pinned per statement; estimates are identical at any domain count).";
    }

  let policy =
    {
      names = [ "policy" ];
      docv = "POLICY";
      doc = "Scheduling policy: $(b,round-robin) or $(b,widest-ci).";
    }

  let deadline =
    {
      names = [ "deadline" ];
      docv = "SECONDS";
      doc = "Per-session deadline from admission; expired sessions stop within one quantum.";
    }

  let interval =
    {
      names = [ "interval" ];
      docv = "SECONDS";
      doc = "Live view refresh interval (default 0.5).";
    }

  let record =
    {
      names = [ "record" ];
      docv = "FILE";
      doc =
        "Dump the flight recorder (time series, convergence diagnostics, trace \
         events) as Chrome-trace-loadable JSON to $(docv).";
    }

  let trace =
    {
      names = [ "trace" ];
      docv = "";
      doc = "Record begin/end spans (quanta, driver advances, optimizer trials).";
    }

  let memory_budget =
    {
      names = [ "memory-budget" ];
      docv = "PAGES";
      doc =
        "Select the paged storage backend: serve table data from on-disk \
         column segments through a buffer pool of $(docv) pages (one page = \
         32 rows of one column).";
    }

  let data_dir =
    {
      names = [ "data-dir" ];
      docv = "PATH";
      doc =
        "Directory for the paged backend's segment files (default _wjdata; \
         setting it implies the paged backend).";
    }
end

let sf_arg = Arg.(value & opt float 0.01 & Flag.(info sf))
let seed_arg = Arg.(value & opt int 7 & Flag.(info seed))
let tbl_dir_arg = Arg.(value & opt (some dir) None & Flag.(info tbl_dir))
let memory_budget_arg = Arg.(value & opt (some int) None & Flag.(info memory_budget))
let data_dir_arg = Arg.(value & opt (some string) None & Flag.(info data_dir))

(* --- paged backend ----------------------------------------------------- *)

(* Either flag opts into the paged backend; the other takes its default. *)
let backend_of memory_budget data_dir =
  match (memory_budget, data_dir) with
  | None, None -> None
  | pool_pages, dir -> Some (Wj_storage.Backend.paged ?dir ?pool_pages ())

(* Page the catalog here (rather than letting the SQL engine do it from
   [cfg.backend]) so the CLI holds the pool and can report fault counts
   after the run. *)
let paged_catalog backend catalog =
  match backend with
  | None -> (catalog, None)
  | Some b ->
    Printf.printf "Paging tables: %s ...\n%!" (Format.asprintf "%a" Wj_storage.Backend.pp b);
    Wj_storage.Backend.prepare_catalog b catalog

let pool_report = function
  | None -> ()
  | Some pool ->
    let module P = Wj_storage.Buffer_pool in
    let hits = P.hits pool and misses = P.misses pool in
    Printf.printf
      "buffer pool: %d/%d pages resident; %d accesses = %d hits + %d misses \
       (%.1f%% hit rate)\n"
      (P.resident pool) (P.capacity pool) (P.accesses pool) hits misses
      (if P.accesses pool = 0 then 0.0
       else 100.0 *. float_of_int hits /. float_of_int (P.accesses pool))

(* --- metrics ---------------------------------------------------------- *)

let metrics_arg = Arg.(value & flag & Flag.(info metrics))
let metrics_json_arg = Arg.(value & opt (some string) None & Flag.(info metrics_json))

(* When collection is on, hand the run a metrics-backed sink; afterwards
   render the snapshot (and optionally dump it as JSON). *)
let metrics_sink ~metrics ~json =
  if metrics || json <> None then begin
    let m = Wj_obs.Metrics.create () in
    (Wj_obs.Sink.of_metrics m, Some m)
  end
  else (Wj_obs.Sink.noop, None)

let metrics_finish ~json m_opt =
  match m_opt with
  | None -> ()
  | Some m ->
    let snap = Wj_obs.Snapshot.of_metrics m in
    print_string (Wj_obs.Snapshot.render snap);
    (match json with
    | None -> ()
    | Some file ->
      Out_channel.with_open_text file (fun oc ->
          output_string oc (Wj_obs.Snapshot.to_json snap);
          output_char oc '\n');
      Printf.printf "metrics JSON written to %s\n" file)

let load sf seed tbl_dir =
  match tbl_dir with
  | Some dir ->
    Printf.printf "Loading dbgen .tbl files from %s ...\n%!" dir;
    let d = Wj_tpch.Tbl_loader.load_dir dir in
    Printf.printf "  %d rows total (inferred SF %.3g)\n%!"
      (Wj_tpch.Generator.total_rows d) d.sf;
    d
  | None ->
    Printf.printf "Generating TPC-H data at SF %g (seed %d)...\n%!" sf seed;
    let d = Wj_tpch.Generator.generate ~seed ~sf () in
    Printf.printf "  %d rows total\n%!" (Wj_tpch.Generator.total_rows d);
    d

let sql_errors run =
  match run () with
  | code -> code
  | exception Wj_sql.Lexer.Lex_error (msg, off) ->
    Printf.eprintf "lex error at offset %d: %s\n" off msg;
    1
  | exception Wj_sql.Parser.Parse_error msg ->
    Printf.eprintf "parse error: %s\n" msg;
    1
  | exception Wj_sql.Binder.Bind_error msg ->
    Printf.eprintf "bind error: %s\n" msg;
    1

(* --- query ------------------------------------------------------------ *)

let query_run sf seed tbl_dir memory_budget data_dir metrics json sql =
  let d = load sf seed tbl_dir in
  let catalog = Wj_tpch.Generator.catalog d in
  let catalog, pool = paged_catalog (backend_of memory_budget data_dir) catalog in
  let sink, m_opt = metrics_sink ~metrics ~json in
  sql_errors (fun () ->
      let r = Wj_sql.Engine.execute ~seed ~sink ~on_report:print_endline catalog sql in
      print_string (Wj_sql.Engine.render r);
      pool_report pool;
      metrics_finish ~json m_opt;
      0)

let query_term =
  let sql_arg =
    let doc = "The SQL statement to execute." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)
  in
  Term.(
    const query_run $ sf_arg $ seed_arg $ tbl_dir_arg $ memory_budget_arg
    $ data_dir_arg $ metrics_arg $ metrics_json_arg $ sql_arg)

(* --- serve ------------------------------------------------------------ *)

let policy_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "round-robin" | "rr" -> Ok Wj_service.Scheduler.Round_robin
    | "widest-ci" | "widest" -> Ok Wj_service.Scheduler.Widest_ci
    | _ -> Error (`Msg "expected round-robin or widest-ci")
  in
  let print fmt p =
    Format.fprintf fmt "%s"
      (match p with
      | Wj_service.Scheduler.Round_robin -> "round-robin"
      | Wj_service.Scheduler.Widest_ci -> "widest-ci")
  in
  Arg.conv (parse, print)

let serve_run sf seed tbl_dir memory_budget data_dir metrics json time quantum
    max_live domains policy deadline sqls =
  let d = load sf seed tbl_dir in
  let catalog = Wj_tpch.Generator.catalog d in
  let catalog, pool = paged_catalog (backend_of memory_budget data_dir) catalog in
  let msink, m_opt = metrics_sink ~metrics ~json in
  (* Interleaved progress: render the scheduler's Session_* event stream. *)
  let labels : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let name id = try Hashtbl.find labels id with Not_found -> Printf.sprintf "session%d" id in
  let on_event : Wj_obs.Event.t -> unit = function
    | Session_admitted { session; label } ->
      Hashtbl.replace labels session label;
      Printf.printf "%-24s admitted\n%!" label
    | Session_started { session } -> Printf.printf "%-24s started\n%!" (name session)
    | Session_report { session; progress = p; deadline_left } ->
      let deadline =
        match deadline_left with
        | None -> ""
        | Some d -> Printf.sprintf " [%.2fs left]" d
      in
      Printf.printf "%-24s [%6.2fs] %.6g +/- %.4g (%d walks)%s\n%!" (name session)
        p.Wj_obs.Progress.elapsed p.Wj_obs.Progress.estimate
        p.Wj_obs.Progress.half_width p.Wj_obs.Progress.walks deadline
    | Session_finished { session; outcome; reason } ->
      let why = match reason with None -> "" | Some r -> " (" ^ r ^ ")" in
      Printf.printf "%-24s finished: %s%s\n%!" (name session) outcome why
    | _ -> ()
  in
  let sink = Wj_obs.Sink.tee (Wj_obs.Sink.of_fn on_event) msink in
  let cfg = Wj_core.Run_config.make ~seed ~max_time:time () in
  let sqls =
    List.concat_map (String.split_on_char ';') sqls
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  sql_errors (fun () ->
      let served =
        Wj_sql.Engine.serve ?quantum ?max_live ?domains ~policy ~sink ?deadline
          cfg catalog sqls
      in
      print_string (Wj_sql.Engine.render_served served);
      pool_report pool;
      metrics_finish ~json m_opt;
      0)

let serve_term =
  let sqls_arg =
    let doc = "SQL statements to run concurrently (also split on ';')." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"SQL" ~doc)
  in
  let time_arg = Arg.(value & opt float 5.0 & Flag.(info (time 5.0))) in
  let quantum_arg = Arg.(value & opt (some int) None & Flag.(info quantum)) in
  let max_live_arg = Arg.(value & opt (some int) None & Flag.(info max_live)) in
  let domains_arg = Arg.(value & opt (some int) None & Flag.(info domains)) in
  let policy_arg =
    Arg.(value & opt policy_conv Wj_service.Scheduler.Round_robin & Flag.(info policy))
  in
  let deadline_arg = Arg.(value & opt (some float) None & Flag.(info deadline)) in
  Term.(
    const serve_run $ sf_arg $ seed_arg $ tbl_dir_arg $ memory_budget_arg
    $ data_dir_arg $ metrics_arg $ metrics_json_arg $ time_arg $ quantum_arg
    $ max_live_arg $ domains_arg $ policy_arg $ deadline_arg $ sqls_arg)

(* --- top -------------------------------------------------------------- *)

(* The flight recorder's post-mortem: per-scope convergence diagnostics
   (fitted CI decay, per-plan variance attribution, stalled plans) and,
   when tracing, where the time went by span name. *)
let print_recorder_summary recorder =
  List.iter
    (fun scope ->
      let c = Wj_obs.Recorder.convergence recorder ~scope in
      let where = if scope = "" then "run" else String.sub scope 0 (String.length scope - 1) in
      (match Wj_obs.Convergence.fit c with
      | None -> ()
      | Some f ->
        Printf.printf
          "%s: CI ~ %.4g * walks^%.3f over %d samples (convergence ratio %.2f)\n"
          where f.Wj_obs.Convergence.c f.Wj_obs.Convergence.exponent
          f.Wj_obs.Convergence.points
          (Option.value ~default:Float.nan (Wj_obs.Convergence.convergence_ratio c)));
      List.iter
        (fun (a : Wj_obs.Convergence.attribution) ->
          Printf.printf "  %5.1f%% of variance mass: %-50s (%d/%d walks ok, var %.4g)\n"
            (100.0 *. a.Wj_obs.Convergence.share)
            a.Wj_obs.Convergence.plan a.Wj_obs.Convergence.successes
            a.Wj_obs.Convergence.attempts a.Wj_obs.Convergence.variance)
        (Wj_obs.Convergence.attribution c);
      (match Wj_obs.Convergence.stalled c with
      | [] -> ()
      | ps -> Printf.printf "  stalled plans: %s\n" (String.concat "; " ps)))
    (Wj_obs.Recorder.convergence_scopes recorder);
  match Wj_obs.Recorder.trace recorder with
  | None -> ()
  | Some tr ->
    List.iter
      (fun (name, (seconds, count)) ->
        Printf.printf "span %-24s %8d x, %.4fs total\n" name count seconds)
      (Wj_obs.Trace.totals tr);
    if Wj_obs.Trace.dropped tr > 0 then
      Printf.printf "(%d trace events dropped at capacity)\n" (Wj_obs.Trace.dropped tr)

let write_record recorder file =
  Out_channel.with_open_text file (fun oc ->
      output_string oc (Wj_obs.Recorder.to_json recorder));
  Printf.printf "flight record written to %s (load in chrome://tracing)\n" file

(* One live table row per scheduler session, updated from the milestone
   event stream. *)
type top_row = {
  r_id : int;
  mutable r_label : string;
  mutable r_state : string;
  mutable r_progress : Wj_obs.Progress.t option;
  mutable r_rate : float;  (* walks/s between the last two reports *)
}

let top_run sf seed tbl_dir memory_budget data_dir time quantum max_live policy
    deadline interval tracing record sqls =
  let d = load sf seed tbl_dir in
  let catalog = Wj_tpch.Generator.catalog d in
  let catalog, pool = paged_catalog (backend_of memory_budget data_dir) catalog in
  let recorder = Wj_obs.Recorder.create ~tracing () in
  let rows : (int, top_row) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let row id =
    match Hashtbl.find_opt rows id with
    | Some r -> r
    | None ->
      let r =
        {
          r_id = id;
          r_label = Printf.sprintf "session%d" id;
          r_state = "queued";
          r_progress = None;
          r_rate = Float.nan;
        }
      in
      Hashtbl.add rows id r;
      order := id :: !order;
      r
  in
  let conv_ratio id =
    let c =
      Wj_obs.Recorder.convergence recorder
        ~scope:(Wj_obs.Recorder.scope_of_session id)
    in
    Wj_obs.Convergence.convergence_ratio c
  in
  let table () =
    let header =
      Printf.sprintf "%-24s %-10s %10s %9s %13s %11s %6s" "SESSION" "STATE" "WALKS"
        "WALKS/S" "ESTIMATE" "CI+/-" "CONV"
    in
    header
    :: List.rev_map
         (fun id ->
           let r = row id in
           let conv =
             match conv_ratio id with
             | Some v when Float.is_finite v -> Printf.sprintf "%.2f" v
             | _ -> "-"
           in
           match r.r_progress with
           | None ->
             Printf.sprintf "%-24s %-10s %10s %9s %13s %11s %6s" r.r_label r.r_state
               "-" "-" "-" "-" conv
           | Some p ->
             Printf.sprintf "%-24s %-10s %10d %9s %13.6g %11.4g %6s" r.r_label
               r.r_state p.Wj_obs.Progress.walks
               (if Float.is_nan r.r_rate then "-" else Printf.sprintf "%.0f" r.r_rate)
               p.Wj_obs.Progress.estimate p.Wj_obs.Progress.half_width conv)
         !order
  in
  let tty = Unix.isatty Unix.stdout in
  let drawn = ref 0 in
  let last_draw = ref Float.neg_infinity in
  let draw ~force () =
    if tty then begin
      let now = Unix.gettimeofday () in
      if force || now -. !last_draw >= interval then begin
        last_draw := now;
        if !drawn > 0 then Printf.printf "\027[%dA" !drawn;
        let lines = table () in
        List.iter (fun l -> Printf.printf "\027[2K%s\n" l) lines;
        drawn := List.length lines;
        flush stdout
      end
    end
  in
  let on_event : Wj_obs.Event.t -> unit = function
    | Session_admitted { session; label } ->
      (row session).r_label <- label;
      draw ~force:false ()
    | Session_started { session } ->
      (row session).r_state <- "running";
      draw ~force:false ()
    | Session_report { session; progress = p; deadline_left = _ } ->
      let r = row session in
      (match r.r_progress with
      | Some prev
        when p.Wj_obs.Progress.elapsed > prev.Wj_obs.Progress.elapsed
             && p.Wj_obs.Progress.walks > prev.Wj_obs.Progress.walks ->
        r.r_rate <-
          float_of_int (p.Wj_obs.Progress.walks - prev.Wj_obs.Progress.walks)
          /. (p.Wj_obs.Progress.elapsed -. prev.Wj_obs.Progress.elapsed)
      | _ -> ());
      r.r_progress <- Some p;
      draw ~force:false ()
    | Session_finished { session; outcome; reason } ->
      let r = row session in
      r.r_state <-
        (match reason with Some why -> outcome ^ ":" ^ why | None -> outcome);
      draw ~force:false ()
    | _ -> ()
  in
  let sink =
    Wj_obs.Sink.tee
      (Wj_obs.Sink.make ~on_event ~events:`Reports ())
      (Wj_obs.Recorder.sink recorder)
  in
  let cfg = Wj_core.Run_config.make ~seed ~max_time:time ~recorder () in
  let sqls =
    List.concat_map (String.split_on_char ';') sqls
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  sql_errors (fun () ->
      let served =
        Wj_sql.Engine.serve ?quantum ?max_live ~policy ~sink ?deadline cfg catalog
          sqls
      in
      if tty then draw ~force:true () else List.iter print_endline (table ());
      print_newline ();
      print_string (Wj_sql.Engine.render_served served);
      pool_report pool;
      print_recorder_summary recorder;
      (match record with None -> () | Some file -> write_record recorder file);
      0)

let top_term =
  let sqls_arg =
    let doc = "SQL statements to run concurrently (also split on ';')." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"SQL" ~doc)
  in
  let time_arg = Arg.(value & opt float 5.0 & Flag.(info (time 5.0))) in
  let quantum_arg = Arg.(value & opt (some int) None & Flag.(info quantum)) in
  let max_live_arg = Arg.(value & opt (some int) None & Flag.(info max_live)) in
  let policy_arg =
    Arg.(value & opt policy_conv Wj_service.Scheduler.Round_robin & Flag.(info policy))
  in
  let deadline_arg = Arg.(value & opt (some float) None & Flag.(info deadline)) in
  let interval_arg = Arg.(value & opt float 0.5 & Flag.(info interval)) in
  let trace_arg = Arg.(value & flag & Flag.(info trace)) in
  let record_arg = Arg.(value & opt (some string) None & Flag.(info record)) in
  Term.(
    const top_run $ sf_arg $ seed_arg $ tbl_dir_arg $ memory_budget_arg
    $ data_dir_arg $ time_arg $ quantum_arg $ max_live_arg $ policy_arg
    $ deadline_arg $ interval_arg $ trace_arg $ record_arg $ sqls_arg)

(* --- tpch ------------------------------------------------------------- *)

let spec_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "q3" -> Ok Wj_tpch.Queries.Q3
    | "q7" -> Ok Wj_tpch.Queries.Q7
    | "q10" -> Ok Wj_tpch.Queries.Q10
    | _ -> Error (`Msg "expected q3, q7 or q10")
  in
  let print fmt s = Format.fprintf fmt "%s" (Wj_tpch.Queries.name_of s) in
  Arg.conv (parse, print)

let spec_arg =
  let doc = "Benchmark query: q3, q7 or q10." in
  Arg.(required & pos 0 (some spec_conv) None & info [] ~docv:"QUERY" ~doc)

let tpch_run sf seed tbl_dir memory_budget data_dir spec barebone time target exact
    complete metrics json record =
  let d = load sf seed tbl_dir in
  let variant = if barebone then Wj_tpch.Queries.Barebone else Standard in
  let q = Wj_tpch.Queries.build ~variant spec d in
  (* Swap the query's tables for paged twins before the registry is
     built, so index builds scan (and fault) the segment files too. *)
  let q, pool =
    match backend_of memory_budget data_dir with
    | None -> (q, None)
    | Some b ->
      Printf.printf "Paging tables: %s ...\n%!"
        (Format.asprintf "%a" Wj_storage.Backend.pp b);
      let tables, pool =
        Wj_storage.Backend.prepare_tables b (Array.to_list q.Wj_core.Query.tables)
      in
      ({ q with Wj_core.Query.tables = Array.of_list tables }, pool)
  in
  let reg = Wj_tpch.Queries.registry q in
  let sink, m_opt = metrics_sink ~metrics ~json in
  let target = Option.map (fun pct -> Wj_stats.Target.relative (pct /. 100.0)) target in
  if complete then begin
    let r =
      Wj_exec.Complete.run ~seed ?target ~report_every:0.5
        ~on_report:(fun rep ->
          Printf.printf "[%6.2fs] estimate %.6g +/- %.4g (%d walks)\n%!" rep.elapsed
            rep.estimate rep.half_width rep.walks)
        q reg
    in
    Printf.printf "full join finished in %.3fs: exact = %.6g (join size %d)\n"
      r.exact_time r.exact.value r.exact.join_size;
    Printf.printf "online at cancellation: %.6g +/- %.4g (%d walks)\n"
      r.online.final.estimate r.online.final.half_width r.online.final.walks;
    0
  end
  else begin
    let recorder =
      match record with
      | None -> None
      | Some _ -> Some (Wj_obs.Recorder.create ~tracing:true ())
    in
    let cfg =
      Wj_core.Run_config.make ~seed ~max_time:time ?target ~report_every:1.0 ~sink
        ?recorder ()
    in
    let out =
      Wj_core.Online.run_session
        ~on_report:(fun r ->
          Printf.printf "[%6.2fs] estimate %.6g +/- %.4g (%d walks, %d successes)\n%!"
            r.elapsed r.estimate r.half_width r.walks r.successes)
        cfg q reg
    in
    Printf.printf "final: %.6g +/- %.4g after %.2fs (%d walks; plan %s)\n"
      out.final.estimate out.final.half_width out.final.elapsed out.final.walks
      out.plan_description;
    if exact then begin
      let e = Wj_exec.Exact.aggregate q reg in
      Printf.printf "exact: %.6g (join size %d); actual error %.4f%%\n" e.value
        e.join_size
        (100.0 *. Float.abs ((out.final.estimate -. e.value) /. e.value))
    end;
    pool_report pool;
    (match m_opt with Some m -> Wj_core.Registry.export_metrics reg m | None -> ());
    metrics_finish ~json m_opt;
    (match (recorder, record) with
    | Some r, Some file ->
      print_recorder_summary r;
      write_record r file
    | _ -> ());
    0
  end

let tpch_term =
  let barebone_arg = Arg.(value & flag & Flag.(info barebone)) in
  let time_arg = Arg.(value & opt float 5.0 & Flag.(info (time 5.0))) in
  let target_arg = Arg.(value & opt (some float) None & Flag.(info target)) in
  let exact_arg = Arg.(value & flag & Flag.(info exact)) in
  let complete_arg = Arg.(value & flag & Flag.(info complete)) in
  let record_arg = Arg.(value & opt (some string) None & Flag.(info record)) in
  Term.(
    const tpch_run $ sf_arg $ seed_arg $ tbl_dir_arg $ memory_budget_arg
    $ data_dir_arg $ spec_arg $ barebone_arg $ time_arg $ target_arg $ exact_arg
    $ complete_arg $ metrics_arg $ metrics_json_arg $ record_arg)

(* --- plans ------------------------------------------------------------ *)

let plans_run sf seed tbl_dir spec =
  let d = load sf seed tbl_dir in
  let q = Wj_tpch.Queries.build ~variant:Standard spec d in
  let reg = Wj_tpch.Queries.registry q in
  let prng = Wj_util.Prng.create seed in
  let r = Wj_core.Optimizer.choose q reg prng in
  Printf.printf "%d plans enumerated; optimizer trials: %d walks\n"
    (List.length r.reports) r.total_trial_walks;
  List.iter
    (fun (p : Wj_core.Optimizer.plan_report) ->
      Printf.printf "%s %-60s  success %4d/%-5d  Var*E[T] %.4g\n"
        (if p.chosen then "*" else " ")
        (Wj_core.Walk_plan.describe q p.plan)
        p.trial_successes p.trial_walks p.objective)
    r.reports;
  0

let plans_term = Term.(const plans_run $ sf_arg $ seed_arg $ tbl_dir_arg $ spec_arg)

(* --- groupby ----------------------------------------------------------- *)

let groupby_run sf seed tbl_dir spec stratified time =
  match spec with
  | Wj_tpch.Queries.Q7 ->
    Printf.eprintf "GROUP BY c_mktsegment is not available for Q7\n";
    1
  | _ ->
    let d = load sf seed tbl_dir in
    let q = Wj_tpch.Queries.build ~variant:Standard ~group_by_segment:true spec d in
    let reg = Wj_tpch.Queries.registry q in
    let print_report key (r : Wj_core.Online.report) extra =
      Printf.printf "  %-14s %12.6g +/- %-10.4g (%5.2f%%)%s\n"
        (Wj_storage.Value.to_display key)
        r.estimate r.half_width
        (100.0 *. r.half_width /. Float.abs r.estimate)
        extra
    in
    if stratified then begin
      (* Stratify on the dictionary-encoded segment id. *)
      let pos, _ = Option.get q.Wj_core.Query.group_by in
      let seg_id =
        Wj_storage.Table.column_index q.Wj_core.Query.tables.(pos) "c_mktsegment_id"
      in
      let q = { q with Wj_core.Query.group_by = Some (pos, seg_id) } in
      Wj_core.Registry.add reg ~pos ~column:seg_id
        (Wj_index.Index.build_ordered q.Wj_core.Query.tables.(pos) ~column:seg_id);
      let out = Wj_core.Stratified.run ~seed ~max_time:time q reg in
      Printf.printf "stratified, %d walks total:\n" out.total_walks;
      List.iter
        (fun (g : Wj_core.Stratified.group_state) ->
          let label =
            Wj_tpch.Generator.market_segments.(Wj_storage.Value.to_int g.key)
          in
          print_report (Wj_storage.Value.Str label) g.report
            (Printf.sprintf "  [%d walks]" g.report.walks))
        out.strata
    end
    else begin
      let out =
        Wj_core.Online.run_group_by_session
          (Wj_core.Run_config.make ~seed ~max_time:time ())
          q reg
      in
      Printf.printf "plain group-by, %d walks total:\n" out.total_walks;
      List.iter (fun (key, r) -> print_report key r "") out.groups
    end;
    0

let groupby_term =
  let stratified_arg = Arg.(value & flag & Flag.(info stratified)) in
  let time_arg = Arg.(value & opt float 3.0 & Flag.(info (time 3.0))) in
  Term.(
    const groupby_run $ sf_arg $ seed_arg $ tbl_dir_arg $ spec_arg $ stratified_arg
    $ time_arg)

(* --- suggest ------------------------------------------------------------ *)

let suggest_run sf seed tbl_dir spec =
  let d = load sf seed tbl_dir in
  let q = Wj_tpch.Queries.build ~variant:Standard spec d in
  let reg = Wj_tpch.Queries.registry q in
  let order, estimates = Wj_core.Cardinality.suggest_order ~seed q reg in
  Printf.printf "suggested join order: %s\n"
    (String.concat " -> "
       (Array.to_list (Array.map (fun i -> q.Wj_core.Query.names.(i)) order)));
  List.iter
    (fun (e : Wj_core.Cardinality.estimate) ->
      Printf.printf "  after {%s}: ~%.4g results (+/- %.3g, %d walks)\n"
        (String.concat ", "
           (List.map (fun i -> q.Wj_core.Query.names.(i)) e.members))
        e.size e.half_width e.walks)
    estimates;
  (match Wj_core.Walk_plan.of_order q reg order with
  | Some plan ->
    let guided = Wj_exec.Exact.aggregate ~plan q reg in
    let naive = Wj_exec.Exact.aggregate q reg in
    Printf.printf "exact execution cost: %d tuples (FROM order: %d)\n"
      guided.rows_visited naive.rows_visited
  | None -> Printf.printf "(order not walkable with current indexes)\n");
  0

let suggest_term = Term.(const suggest_run $ sf_arg $ seed_arg $ tbl_dir_arg $ spec_arg)

(* --- wjd (network daemon) ---------------------------------------------- *)

module Json = Wj_daemon.Json

let wjd_run sf seed tbl_dir port quantum max_live max_queued tenant_quota cache
    access_log slow_query_ms trace_cap time =
  let d = load sf seed tbl_dir in
  let catalog = Wj_tpch.Generator.catalog d in
  let daemon =
    Wj_daemon.Daemon.create ?quantum ?max_live ?max_queued ?tenant_quota
      ?cache_capacity:cache ?access_log ?slow_query_ms
      ?trace_capacity:trace_cap ~default_seed:seed ~default_time:time ~port
      catalog
  in
  Wj_daemon.Daemon.start daemon;
  Printf.printf
    "wjd listening on %s (POST /query, GET /stats, GET /metrics; POST /shutdown to stop)\n%!"
    (Wj_daemon.Daemon.url daemon);
  Wj_daemon.Daemon.wait daemon;
  Printf.printf "wjd stopped\n";
  0

let wjd_term =
  let port_arg =
    let doc = "TCP port to listen on (0 picks an ephemeral port)." in
    Arg.(value & opt int 8080 & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let quantum_arg = Arg.(value & opt (some int) None & Flag.(info quantum)) in
  let max_live_arg = Arg.(value & opt (some int) None & Flag.(info max_live)) in
  let max_queued_arg =
    let doc = "Admission queue bound: further submissions get 429 (default 64)." in
    Arg.(value & opt (some int) None & info [ "max-queued" ] ~docv:"N" ~doc)
  in
  let tenant_quota_arg =
    let doc = "Per-tenant in-flight session quota (default unbounded)." in
    Arg.(value & opt (some int) None & info [ "tenant-quota" ] ~docv:"N" ~doc)
  in
  let cache_arg =
    let doc = "Estimate cache capacity in entries (default 256)." in
    Arg.(value & opt (some int) None & info [ "cache" ] ~docv:"N" ~doc)
  in
  let access_log_arg =
    let doc =
      "Write one JSON line per request to $(docv) ('-' for stderr): trace id, \
       tenant, statement hash, outcome, queue wait, quanta, walks, final CI, \
       cache disposition."
    in
    Arg.(value & opt (some string) None & info [ "access-log" ] ~docv:"FILE" ~doc)
  in
  let slow_query_ms_arg =
    let doc =
      "Slow-query threshold in milliseconds: requests at or above it log \
       slow:true plus their convergence fit (default off)."
    in
    Arg.(value & opt (some float) None & info [ "slow-query-ms" ] ~docv:"MS" ~doc)
  in
  let trace_cap_arg =
    let doc = "Retained request traces for GET /trace/<id> (default 64)." in
    Arg.(value & opt (some int) None & info [ "trace" ] ~docv:"N" ~doc)
  in
  let time_arg = Arg.(value & opt float 5.0 & Flag.(info (time 5.0))) in
  Term.(
    const wjd_run $ sf_arg $ seed_arg $ tbl_dir_arg $ port_arg $ quantum_arg
    $ max_live_arg $ max_queued_arg $ tenant_quota_arg $ cache_arg
    $ access_log_arg $ slow_query_ms_arg $ trace_cap_arg $ time_arg)

(* --- watch (daemon client) ---------------------------------------------- *)

let print_final_item item =
  let str name = Option.bind (Json.member name item) Json.to_str in
  let flt name = Option.bind (Json.member name item) Json.to_float in
  let int name = Option.bind (Json.member name item) Json.to_int in
  let label = Option.value (str "label") ~default:"?" in
  let print_groups () render =
    List.iter
      (fun g ->
        let key = Option.value (Option.bind (Json.member "key" g) Json.to_str) ~default:"?" in
        render g key)
      (Option.value (Option.bind (Json.member "groups" item) Json.to_list) ~default:[])
  in
  match Option.value (str "kind") ~default:"online" with
  | "exact" ->
    Printf.printf "%s = %.6g  (exact)\n" label
      (Option.value (flt "value") ~default:Float.nan)
  | "exact_groups" ->
    print_groups () (fun g key ->
        Printf.printf "%s [%s] = %.6g  (exact)\n" label key
          (Option.value (Option.bind (Json.member "value" g) Json.to_float)
             ~default:Float.nan))
  | "group_by" ->
    print_groups () (fun g key ->
        let gf name = Option.value (Option.bind (Json.member name g) Json.to_float) ~default:Float.nan in
        Printf.printf "%s [%s] = %.6g +/- %.4g\n" label key (gf "estimate") (gf "half_width"))
  | _ -> (
    match flt "estimate" with
    | Some est ->
      Printf.printf "%s = %.6g +/- %.4g  (walks %d, state %s%s)\n" label est
        (Option.value (flt "half_width") ~default:Float.nan)
        (Option.value (int "walks") ~default:0)
        (Option.value (str "state") ~default:"?")
        (match str "reason" with Some r -> ", " ^ r | None -> "")
    | None ->
      Printf.printf "%s: %s before running\n" label
        (Option.value (str "state") ~default:"?"))

let print_stream_line line =
  match Json.parse line with
  | exception Json.Parse_error _ -> print_endline line
  | j -> (
    match Option.bind (Json.member "type" j) Json.to_str with
    | Some "progress" ->
      let flt name = Option.value (Option.bind (Json.member name j) Json.to_float) ~default:Float.nan in
      let int name = Option.value (Option.bind (Json.member name j) Json.to_int) ~default:0 in
      Printf.printf "[%6.2fs] item %d: %.6g +/- %.4g (walks %d, successes %d)%s\n%!"
        (flt "elapsed") (int "item") (flt "estimate") (flt "half_width")
        (int "walks") (int "successes")
        (match Option.bind (Json.member "deadline_left" j) Json.to_float with
        | Some d -> Printf.sprintf "  [deadline %.1fs]" d
        | None -> "")
    | Some "final" ->
      Printf.printf "--- final (%s%s) ---\n"
        (Option.value (Option.bind (Json.member "status" j) Json.to_str) ~default:"?")
        (if Option.bind (Json.member "cached" j) Json.to_bool = Some true then
           ", cached"
         else "");
      List.iter print_final_item
        (Option.value (Option.bind (Json.member "items" j) Json.to_list) ~default:[])
    | _ -> print_endline line)

let watch_run url sql tenant deadline seed walks target no_cache =
  let fields =
    [ ("sql", Json.Str sql) ]
    @ (match tenant with Some s -> [ ("tenant", Json.Str s) ] | None -> [])
    @ (match deadline with Some f -> [ ("deadline", Json.Float f) ] | None -> [])
    @ (match seed with Some n -> [ ("seed", Json.Int n) ] | None -> [])
    @ (match walks with Some n -> [ ("max_walks", Json.Int n) ] | None -> [])
    @ (match target with Some f -> [ ("target_pct", Json.Float f) ] | None -> [])
    @ if no_cache then [ ("cache", Json.Bool false) ] else []
  in
  let body = Json.to_string (Json.Obj fields) in
  (* Chunk boundaries are line boundaries on the daemon side, but stay
     robust to re-framing: buffer and split on newlines. *)
  let partial = Buffer.create 256 in
  let on_chunk data =
    Buffer.add_string partial data;
    let rec drain () =
      let s = Buffer.contents partial in
      match String.index_opt s '\n' with
      | None -> ()
      | Some i ->
        Buffer.clear partial;
        Buffer.add_string partial (String.sub s (i + 1) (String.length s - i - 1));
        print_stream_line (String.sub s 0 i);
        drain ()
    in
    drain ()
  in
  match Wj_daemon.Http.fetch ~body ~on_chunk (url ^ "/query") with
  | resp ->
    if resp.Wj_daemon.Http.status = 200 then begin
      (* Non-streamed responses (cache hits, all-exact statements) land
         here without having passed through [on_chunk]. *)
      if Buffer.length partial = 0 && resp.resp_body <> "" then
        String.split_on_char '\n' (String.trim resp.resp_body)
        |> List.iter (fun l -> if l <> "" then print_stream_line l);
      0
    end
    else begin
      Printf.eprintf "HTTP %d %s\n%s" resp.status
        (Wj_daemon.Http.status_reason resp.status)
        resp.resp_body;
      (match List.assoc_opt "retry-after" resp.resp_headers with
      | Some s -> Printf.eprintf "(retry after %ss)\n" s
      | None -> ());
      1
    end
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "connection to %s failed: %s\n" url (Unix.error_message e);
    1
  | exception Wj_daemon.Http.Bad_request msg ->
    Printf.eprintf "malformed response from %s: %s\n" url msg;
    1

let watch_term =
  let url_arg =
    let doc = "Daemon base URL, e.g. http://127.0.0.1:8080." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"URL" ~doc)
  in
  let sql_arg =
    let doc = "The SQL statement to submit." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"SQL" ~doc)
  in
  let tenant_arg =
    let doc = "Tenant name for admission quotas." in
    Arg.(value & opt (some string) None & info [ "tenant" ] ~docv:"NAME" ~doc)
  in
  let deadline_arg = Arg.(value & opt (some float) None & Flag.(info deadline)) in
  let seed_opt_arg =
    let doc = "Override the daemon's default sampling seed." in
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let walks_arg =
    let doc = "Walk budget for the request's online aggregates." in
    Arg.(value & opt (some int) None & info [ "walks" ] ~docv:"N" ~doc)
  in
  let target_arg = Arg.(value & opt (some float) None & Flag.(info target)) in
  let no_cache_arg =
    let doc = "Bypass the daemon's estimate cache for this request." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  Term.(
    const watch_run $ url_arg $ sql_arg $ tenant_arg $ deadline_arg
    $ seed_opt_arg $ walks_arg $ target_arg $ no_cache_arg)

(* --- wjd-top (remote live view) ----------------------------------------- *)

(* A remote [top]: poll a running daemon's [/stats] (whose metrics
   snapshot carries the per-session progress gauges) and [/metrics] (the
   same Prometheus text any scraper sees) and redraw an ANSI table — no
   local catalog, just the wire. *)

(* First label-less sample of a family in Prometheus text exposition. *)
let prom_value body name =
  String.split_on_char '\n' body
  |> List.find_map (fun line ->
         if String.length line = 0 || line.[0] = '#' then None
         else
           match String.index_opt line ' ' with
           | Some i when String.sub line 0 i = name ->
             float_of_string_opt
               (String.sub line (i + 1) (String.length line - i - 1))
           | _ -> None)

(* "session<N>.progress.<field>" gauges out of a /stats response, grouped
   per session id. *)
let session_rows stats_json =
  let rows : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  (match
     Option.bind (Json.member "metrics" stats_json) (Json.member "gauges")
   with
  | Some (Json.Obj fields) ->
    List.iter
      (fun (name, v) ->
        match Json.to_float v with
        | None -> ()
        | Some value ->
          if String.starts_with ~prefix:"session" name then (
            match String.index_opt name '.' with
            | Some dot -> (
              match int_of_string_opt (String.sub name 7 (dot - 7)) with
              | Some id ->
                let cell =
                  match Hashtbl.find_opt rows id with
                  | Some r -> r
                  | None ->
                    let r = ref [] in
                    Hashtbl.add rows id r;
                    r
                in
                cell :=
                  (String.sub name (dot + 1) (String.length name - dot - 1), value)
                  :: !cell
              | None -> ())
            | None -> ()))
      fields
  | _ -> ());
  Hashtbl.fold (fun id cell acc -> (id, !cell) :: acc) rows []
  |> List.sort compare

let wjd_top_run url interval iterations =
  let url =
    if String.length url > 0 && url.[String.length url - 1] = '/' then
      String.sub url 0 (String.length url - 1)
    else url
  in
  let tty = Unix.isatty Unix.stdout in
  let drawn = ref 0 in
  let prev = ref None in
  (* (poll time, cumulative walks) for the walks/s rate *)
  let rec poll n =
    match
      ( Wj_daemon.Http.fetch (url ^ "/stats"),
        Wj_daemon.Http.fetch (url ^ "/metrics") )
    with
    | exception Unix.Unix_error (e, _, _) ->
      if n = 0 then begin
        Printf.eprintf "connection to %s failed: %s\n" url (Unix.error_message e);
        1
      end
      else begin
        Printf.printf "daemon at %s went away\n" url;
        0
      end
    | exception Wj_daemon.Http.Bad_request msg ->
      Printf.eprintf "malformed response from %s: %s\n" url msg;
      1
    | stats, metrics ->
      if stats.Wj_daemon.Http.status <> 200 || metrics.Wj_daemon.Http.status <> 200
      then begin
        Printf.eprintf "HTTP %d from %s\n"
          (max stats.Wj_daemon.Http.status metrics.Wj_daemon.Http.status)
          url;
        1
      end
      else begin
        let j =
          try Json.parse (String.trim stats.Wj_daemon.Http.resp_body)
          with Json.Parse_error _ -> Json.Null
        in
        let jint name =
          Option.value (Option.bind (Json.member name j) Json.to_int) ~default:0
        in
        let body = metrics.Wj_daemon.Http.resp_body in
        let pv name = Option.value (prom_value body name) ~default:0.0 in
        let now = Unix.gettimeofday () in
        let walks = pv "wj_walker_walks" in
        let rate =
          match !prev with
          | Some (t0, w0) when now > t0 && walks >= w0 ->
            (walks -. w0) /. (now -. t0)
          | _ -> Float.nan
        in
        prev := Some (now, walks);
        let lines =
          Printf.sprintf "wjd %s  live %d  queued %d  in-flight %d  epoch %d" url
            (jint "live") (jint "queued") (jint "in_flight") (jint "epoch")
          :: Printf.sprintf
               "requests %.0f (%.0f rejected, %.0f errors)  walks/s %s  cache %d \
                entries (%.0f hits, %.0f misses)  traces %d  heap %.1f Mw"
               (pv "wj_http_requests") (pv "wj_http_rejected") (pv "wj_http_errors")
               (if Float.is_nan rate then "-" else Printf.sprintf "%.0f" rate)
               (jint "cache_entries") (pv "wj_cache_hits") (pv "wj_cache_misses")
               (jint "traces")
               (pv "wj_gc_heap_words" /. 1e6)
          :: Printf.sprintf "%-12s %12s %15s %13s" "SESSION" "WALKS" "ESTIMATE"
               "CI+/-"
          :: List.map
               (fun (id, cells) ->
                 let fmt key spec =
                   match List.assoc_opt key cells with
                   | Some v -> Printf.sprintf spec v
                   | None -> "-"
                 in
                 Printf.sprintf "%-12s %12s %15s %13s"
                   (Printf.sprintf "session%d" id)
                   (fmt "progress.walks" "%.0f")
                   (fmt "progress.estimate" "%.6g")
                   (fmt "progress.half_width" "%.4g"))
               (session_rows j)
        in
        if tty then begin
          if !drawn > 0 then Printf.printf "\027[%dA" !drawn;
          List.iter (fun l -> Printf.printf "\027[2K%s\n" l) lines;
          drawn := List.length lines
        end
        else List.iter print_endline lines;
        flush stdout;
        if iterations > 0 && n + 1 >= iterations then 0
        else begin
          Unix.sleepf interval;
          poll (n + 1)
        end
      end
  in
  poll 0

let wjd_top_term =
  let url_arg =
    let doc = "Daemon base URL, e.g. http://127.0.0.1:8080." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"URL" ~doc)
  in
  let interval_arg = Arg.(value & opt float 1.0 & Flag.(info interval)) in
  let iterations_arg =
    let doc = "Stop after $(docv) polls (0 = run until the daemon goes away)." in
    Arg.(value & opt int 0 & info [ "iterations" ] ~docv:"N" ~doc)
  in
  Term.(const wjd_top_run $ url_arg $ interval_arg $ iterations_arg)

(* --- command table ----------------------------------------------------- *)

(* One row per subcommand: name, one doc line, term.  `wjcli --help`'s
   COMMANDS section is generated by cmdliner from exactly this table. *)
let commands =
  [
    ("query", "Execute a SQL statement (use SELECT ONLINE for online aggregation).", query_term);
    ("serve", "Run several SQL statements concurrently under the session scheduler.", serve_term);
    ("top", "Serve SQL statements with a live per-session view and flight recorder.", top_term);
    ("tpch", "Run a TPC-H benchmark query with wander join.", tpch_term);
    ("plans", "Enumerate walk plans and show the optimizer's evaluation.", plans_term);
    ("groupby", "Online GROUP BY c_mktsegment for a benchmark query.", groupby_term);
    ("suggest", "Suggest a full-join order from wander-join cardinality estimates.", suggest_term);
    ("wjd", "Run the wander-join network daemon (HTTP/1.1 + JSON, see PROTOCOL.md).", wjd_term);
    ("watch", "Submit SQL to a running wjd and watch the CI shrink live.", watch_term);
    ("wjd-top", "Live remote view of a running wjd: poll /stats + /metrics.", wjd_top_term);
  ]

let () =
  let doc = "Wander join: online aggregation via random walks" in
  let info = Cmd.info "wjcli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          (List.map (fun (name, doc, term) -> Cmd.v (Cmd.info name ~doc) term) commands)))
