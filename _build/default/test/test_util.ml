(* Tests for wj_util: PRNG, Vec, Normal, Timer. *)

module Prng = Wj_util.Prng
module Vec = Wj_util.Vec
module Normal = Wj_util.Normal
module Timer = Wj_util.Timer

let check_float = Alcotest.(check (float 1e-9))

(* ---- Prng ------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 2)

let test_prng_copy_independent () =
  let a = Prng.create 5 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b);
  ignore (Prng.bits64 a);
  (* advancing a does not touch b *)
  let before = Prng.copy b in
  Alcotest.(check int64) "b unaffected" (Prng.bits64 before) (Prng.bits64 b)

let test_prng_int_bounds () =
  let t = Prng.create 9 in
  for _ = 1 to 10_000 do
    let x = Prng.int t 7 in
    Alcotest.(check bool) "in [0,7)" true (x >= 0 && x < 7)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0))

let test_prng_int_uniform () =
  (* Chi-square-style sanity check: 10 buckets, 100k draws; each bucket
     should be within 5% of the expected count. *)
  let t = Prng.create 31 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let x = Prng.int t 10 in
    buckets.(x) <- buckets.(x) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d balanced (%d)" i c)
        true
        (abs (c - (n / 10)) < n / 10 / 20))
    buckets

let test_prng_int_in_range () =
  let t = Prng.create 77 in
  for _ = 1 to 1000 do
    let x = Prng.int_in_range t ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in [-5,5]" true (x >= -5 && x <= 5)
  done;
  Alcotest.(check int) "degenerate range" 3 (Prng.int_in_range t ~lo:3 ~hi:3)

let test_prng_float_bounds () =
  let t = Prng.create 13 in
  for _ = 1 to 10_000 do
    let x = Prng.float t 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_prng_float_mean () =
  let t = Prng.create 21 in
  let n = 200_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.float t 1.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_prng_bernoulli () =
  let t = Prng.create 3 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Prng.bernoulli t 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p near 0.3" true (Float.abs (p -. 0.3) < 0.01)

let test_prng_gaussian_moments () =
  let t = Prng.create 8 in
  let n = 200_000 in
  let sum = ref 0.0 and sum2 = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.gaussian t in
    sum := !sum +. x;
    sum2 := !sum2 +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum2 /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.02);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.0) < 0.03)

let test_prng_exponential_mean () =
  let t = Prng.create 15 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential t 2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 1/2" true (Float.abs (mean -. 0.5) < 0.02)

let test_prng_shuffle_is_permutation () =
  let t = Prng.create 44 in
  let a = Array.init 100 Fun.id in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted;
  Alcotest.(check bool) "actually shuffled" true (a <> Array.init 100 Fun.id)

let test_prng_split_independent () =
  let parent = Prng.create 5 in
  let child = Prng.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 parent = Prng.bits64 child then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 2)

let test_prng_pick () =
  let t = Prng.create 2 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (Prng.pick t a) a)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty array") (fun () ->
      ignore (Prng.pick t [||]))

(* ---- Vec ------------------------------------------------------------- *)

let test_vec_push_get () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 999 do
    Vec.push v (i * 2)
  done;
  Alcotest.(check int) "length" 1000 (Vec.length v);
  for i = 0 to 999 do
    Alcotest.(check int) "get" (i * 2) (Vec.get v i)
  done

let test_vec_bounds () =
  let v = Vec.create () in
  Vec.push v 1;
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "get negative" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (Vec.get v (-1)));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set: index out of bounds")
    (fun () -> Vec.set v 5 0)

let test_vec_pop () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Alcotest.(check (option int)) "pop 3" (Some 3) (Vec.pop v);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Vec.pop v);
  Alcotest.(check int) "length" 1 (Vec.length v);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Vec.pop v);
  Alcotest.(check (option int)) "pop empty" None (Vec.pop v)

let test_vec_set () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Vec.set v 1 42;
  Alcotest.(check (list int)) "set" [ 1; 42; 3 ] (Vec.to_list v)

let test_vec_iter_fold_map () =
  let v = Vec.of_array [| 1; 2; 3; 4 |] in
  Alcotest.(check int) "fold sum" 10 (Vec.fold_left ( + ) 0 v);
  let collected = ref [] in
  Vec.iteri (fun i x -> collected := (i, x) :: !collected) v;
  Alcotest.(check int) "iteri count" 4 (List.length !collected);
  let doubled = Vec.map (fun x -> x * 2) v in
  Alcotest.(check (list int)) "map" [ 2; 4; 6; 8 ] (Vec.to_list doubled);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 3) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v)

let test_vec_sort_clear () =
  let v = Vec.of_array [| 3; 1; 2 |] in
  Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Vec.to_list v);
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

let vec_model_test =
  QCheck.Test.make ~name:"vec behaves like a list" ~count:500
    QCheck.(list (int_range 0 2))
    (fun ops ->
      let v = Vec.create () in
      let model = ref [] in
      List.iteri
        (fun i op ->
          match op with
          | 0 ->
            Vec.push v i;
            model := !model @ [ i ]
          | 1 -> (
            match (Vec.pop v, !model) with
            | None, [] -> ()
            | Some x, l when l <> [] ->
              let last = List.nth l (List.length l - 1) in
              if x <> last then QCheck.Test.fail_report "pop mismatch";
              model := List.filteri (fun j _ -> j < List.length l - 1) l
            | _ -> QCheck.Test.fail_report "pop/model disagree on emptiness")
          | _ ->
            if Vec.length v <> List.length !model then
              QCheck.Test.fail_report "length mismatch")
        ops;
      Vec.to_list v = !model)

(* ---- Normal ---------------------------------------------------------- *)

let test_normal_cdf_known () =
  let cases = [ (0.0, 0.5); (1.0, 0.8413447); (-1.0, 0.1586553); (1.96, 0.9750021) ] in
  List.iter
    (fun (x, expected) ->
      Alcotest.(check (float 1e-4))
        (Printf.sprintf "cdf(%g)" x)
        expected (Normal.cdf x))
    cases

let test_normal_quantile_known () =
  Alcotest.(check (float 1e-6)) "median" 0.0 (Normal.quantile 0.5);
  Alcotest.(check (float 1e-4)) "97.5%" 1.959964 (Normal.quantile 0.975);
  Alcotest.(check (float 1e-4)) "2.5%" (-1.959964) (Normal.quantile 0.025);
  Alcotest.(check (float 1e-3)) "99.5%" 2.575829 (Normal.quantile 0.995)

let test_normal_roundtrip () =
  List.iter
    (fun p ->
      let x = Normal.quantile p in
      Alcotest.(check (float 1e-5)) (Printf.sprintf "cdf(quantile %g)" p) p (Normal.cdf x))
    [ 0.001; 0.01; 0.1; 0.3; 0.5; 0.7; 0.9; 0.99; 0.999 ]

let test_normal_z_of_confidence () =
  Alcotest.(check (float 1e-4)) "95%" 1.959964 (Normal.z_of_confidence 0.95);
  Alcotest.(check (float 1e-4)) "99%" 2.575829 (Normal.z_of_confidence 0.99);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Normal.z_of_confidence: alpha must lie in (0,1)") (fun () ->
      ignore (Normal.z_of_confidence 1.5))

let test_normal_quantile_domain () =
  Alcotest.check_raises "p=0" (Invalid_argument "Normal.quantile: p must lie in (0,1)")
    (fun () -> ignore (Normal.quantile 0.0));
  Alcotest.check_raises "p=1" (Invalid_argument "Normal.quantile: p must lie in (0,1)")
    (fun () -> ignore (Normal.quantile 1.0))

let test_normal_pdf () =
  check_float "pdf(0)" 0.3989422804014327 (Normal.pdf 0.0);
  Alcotest.(check (float 1e-9)) "symmetry" (Normal.pdf 1.3) (Normal.pdf (-1.3))

(* ---- Timer ----------------------------------------------------------- *)

let test_timer_virtual () =
  let c = Timer.virtual_ () in
  Alcotest.(check bool) "is virtual" true (Timer.is_virtual c);
  check_float "starts at 0" 0.0 (Timer.elapsed c);
  Timer.advance c 1.5;
  Timer.advance c 0.25;
  check_float "advanced" 1.75 (Timer.elapsed c);
  Timer.reset c;
  check_float "reset" 0.0 (Timer.elapsed c);
  Alcotest.check_raises "negative" (Invalid_argument "Timer.advance: negative amount")
    (fun () -> Timer.advance c (-1.0))

let test_timer_wall () =
  let c = Timer.wall () in
  Alcotest.(check bool) "not virtual" false (Timer.is_virtual c);
  Alcotest.(check bool) "monotone" true (Timer.elapsed c >= 0.0);
  Alcotest.check_raises "cannot advance"
    (Invalid_argument "Timer.advance: cannot advance a wall clock") (fun () ->
      Timer.advance c 1.0)

let test_timer_hybrid () =
  let c = Timer.hybrid () in
  Alcotest.(check bool) "hybrid accepts advance" true (Timer.is_virtual c);
  let before = Timer.elapsed c in
  Timer.advance c 2.0;
  let after = Timer.elapsed c in
  (* Simulated charge plus (tiny) real elapsed time. *)
  Alcotest.(check bool) "charge visible" true (after -. before >= 2.0);
  Alcotest.(check bool) "real time included" true (after >= 2.0);
  Timer.reset c;
  Alcotest.(check bool) "reset clears both parts" true (Timer.elapsed c < 0.5)

let test_timer_time_it () =
  let x, dt = Timer.time_it (fun () -> 42) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check bool) "non-negative duration" true (dt >= 0.0)

let () =
  Alcotest.run "wj_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int uniform" `Slow test_prng_int_uniform;
          Alcotest.test_case "int_in_range" `Quick test_prng_int_in_range;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "float mean" `Slow test_prng_float_mean;
          Alcotest.test_case "bernoulli" `Slow test_prng_bernoulli;
          Alcotest.test_case "gaussian moments" `Slow test_prng_gaussian_moments;
          Alcotest.test_case "exponential mean" `Slow test_prng_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_is_permutation;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "pick" `Quick test_prng_pick;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "pop" `Quick test_vec_pop;
          Alcotest.test_case "set" `Quick test_vec_set;
          Alcotest.test_case "iter/fold/map" `Quick test_vec_iter_fold_map;
          Alcotest.test_case "sort/clear" `Quick test_vec_sort_clear;
          QCheck_alcotest.to_alcotest vec_model_test;
        ] );
      ( "normal",
        [
          Alcotest.test_case "cdf known values" `Quick test_normal_cdf_known;
          Alcotest.test_case "quantile known values" `Quick test_normal_quantile_known;
          Alcotest.test_case "roundtrip" `Quick test_normal_roundtrip;
          Alcotest.test_case "z_of_confidence" `Quick test_normal_z_of_confidence;
          Alcotest.test_case "quantile domain" `Quick test_normal_quantile_domain;
          Alcotest.test_case "pdf" `Quick test_normal_pdf;
        ] );
      ( "timer",
        [
          Alcotest.test_case "virtual clock" `Quick test_timer_virtual;
          Alcotest.test_case "wall clock" `Quick test_timer_wall;
          Alcotest.test_case "hybrid clock" `Quick test_timer_hybrid;
          Alcotest.test_case "time_it" `Quick test_timer_time_it;
        ] );
    ]
