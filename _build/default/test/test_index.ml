(* Tests for wj_index: Hash_index, the counted B+-tree, the Index facade. *)

module Hash_index = Wj_index.Hash_index
module Btree = Wj_index.Btree
module Index = Wj_index.Index
module Table = Wj_storage.Table
module Schema = Wj_storage.Schema
module Prng = Wj_util.Prng

let small_table rows =
  let schema =
    Schema.make [ { Schema.name = "k"; ty = TInt }; { name = "v"; ty = TInt } ]
  in
  let t = Table.create ~name:"t" ~schema () in
  List.iter (fun (k, v) -> ignore (Table.insert t [| Int k; Int v |])) rows;
  t

(* ---- Hash_index ------------------------------------------------------ *)

let test_hash_build_count_nth () =
  let t = small_table [ (1, 0); (2, 0); (1, 0); (3, 0); (1, 0) ] in
  let h = Hash_index.build t ~column:0 in
  Alcotest.(check int) "count 1" 3 (Hash_index.count h 1);
  Alcotest.(check int) "count 2" 1 (Hash_index.count h 2);
  Alcotest.(check int) "count absent" 0 (Hash_index.count h 99);
  Alcotest.(check int) "nth insertion order" 0 (Hash_index.nth h 1 0);
  Alcotest.(check int) "nth 1" 2 (Hash_index.nth h 1 1);
  Alcotest.(check int) "nth 2" 4 (Hash_index.nth h 1 2);
  Alcotest.(check int) "distinct" 3 (Hash_index.distinct_keys h);
  Alcotest.(check int) "entries" 5 (Hash_index.total_entries h);
  Alcotest.(check int) "column" 0 (Hash_index.table_column h)

let test_hash_sample () =
  let t = small_table [ (1, 0); (1, 0); (2, 0) ] in
  let h = Hash_index.build t ~column:0 in
  let prng = Prng.create 3 in
  for _ = 1 to 50 do
    match Hash_index.sample h prng 1 with
    | Some row -> Alcotest.(check bool) "row matches" true (row = 0 || row = 1)
    | None -> Alcotest.fail "sample returned None for present key"
  done;
  Alcotest.(check bool) "absent" true (Hash_index.sample h prng 42 = None)

let test_hash_iter () =
  let t = small_table [ (5, 0); (5, 0); (6, 0) ] in
  let h = Hash_index.build t ~column:0 in
  let seen = ref [] in
  Hash_index.iter_key h 5 (fun r -> seen := r :: !seen);
  Alcotest.(check (list int)) "rows" [ 1; 0 ] !seen

(* ---- Btree: unit tests ----------------------------------------------- *)

let check_inv t =
  match Btree.check_invariants t with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invariant violated: " ^ msg)

let test_btree_empty () =
  let t = Btree.create () in
  Alcotest.(check int) "length" 0 (Btree.length t);
  Alcotest.(check int) "count" 0 (Btree.count_range t ~lo:min_int ~hi:max_int);
  Alcotest.(check bool) "min" true (Btree.min_key t = None);
  Alcotest.(check bool) "max" true (Btree.max_key t = None);
  check_inv t

let test_btree_sequential () =
  let t = Btree.create ~min_degree:2 () in
  for i = 0 to 999 do
    Btree.insert t ~key:i ~value:(i * 10)
  done;
  check_inv t;
  Alcotest.(check int) "length" 1000 (Btree.length t);
  Alcotest.(check int) "count all" 1000 (Btree.count_range t ~lo:0 ~hi:999);
  Alcotest.(check int) "count half" 500 (Btree.count_range t ~lo:0 ~hi:499);
  Alcotest.(check int) "count one" 1 (Btree.count_eq t 42);
  Alcotest.(check bool) "nth" true (Btree.nth t 42 = (42, 420));
  Alcotest.(check bool) "min" true (Btree.min_key t = Some 0);
  Alcotest.(check bool) "max" true (Btree.max_key t = Some 999);
  Alcotest.(check int) "rank_lt" 500 (Btree.rank_lt t 500)

let test_btree_reverse_and_duplicates () =
  let t = Btree.create ~min_degree:2 () in
  for i = 999 downto 0 do
    Btree.insert t ~key:(i / 10) ~value:i
  done;
  check_inv t;
  Alcotest.(check int) "count dup key" 10 (Btree.count_eq t 50);
  Alcotest.(check int) "range [10,19]" 100 (Btree.count_range t ~lo:10 ~hi:19);
  Alcotest.(check int) "empty range" 0 (Btree.count_range t ~lo:5 ~hi:4)

let test_btree_nth_in_range () =
  let t = Btree.create () in
  List.iter (fun k -> Btree.insert t ~key:k ~value:(100 + k)) [ 1; 3; 5; 7; 9 ];
  Alcotest.(check bool) "first >= 4" true
    (Btree.nth_in_range t ~lo:4 ~hi:10 0 = Some (5, 105));
  Alcotest.(check bool) "second" true
    (Btree.nth_in_range t ~lo:4 ~hi:10 1 = Some (7, 107));
  Alcotest.(check bool) "out of range" true (Btree.nth_in_range t ~lo:4 ~hi:10 3 = None);
  Alcotest.(check bool) "empty" true (Btree.nth_in_range t ~lo:10 ~hi:4 0 = None)

let test_btree_iter_range () =
  let t = Btree.create ~min_degree:2 () in
  for i = 0 to 199 do
    Btree.insert t ~key:(i mod 50) ~value:i
  done;
  let collected = ref [] in
  Btree.iter_range t ~lo:10 ~hi:12 (fun k v -> collected := (k, v) :: !collected);
  Alcotest.(check int) "count" 12 (List.length !collected);
  List.iter
    (fun (k, v) ->
      Alcotest.(check bool) "key in range" true (k >= 10 && k <= 12);
      Alcotest.(check int) "value consistent" k (v mod 50))
    !collected;
  (* keys are emitted in order *)
  let keys = List.rev_map fst !collected in
  Alcotest.(check bool) "sorted" true (List.sort compare keys = keys)

let test_btree_remove_simple () =
  let t = Btree.create ~min_degree:2 () in
  for i = 0 to 99 do
    Btree.insert t ~key:i ~value:i
  done;
  for i = 0 to 99 do
    if i mod 2 = 0 then
      Alcotest.(check bool) "removed" true (Btree.remove t ~key:i ~value:i)
  done;
  check_inv t;
  Alcotest.(check int) "length" 50 (Btree.length t);
  Alcotest.(check bool) "odd kept" true (Btree.mem t 51);
  Alcotest.(check bool) "even gone" false (Btree.mem t 50);
  Alcotest.(check bool) "remove absent" false (Btree.remove t ~key:50 ~value:50)

let test_btree_remove_duplicates_by_value () =
  let t = Btree.create ~min_degree:2 () in
  for v = 0 to 9 do
    Btree.insert t ~key:7 ~value:v
  done;
  Alcotest.(check bool) "remove value 4" true (Btree.remove t ~key:7 ~value:4);
  Alcotest.(check int) "count" 9 (Btree.count_eq t 7);
  Alcotest.(check bool) "4 gone" false (Btree.remove t ~key:7 ~value:4);
  check_inv t

let test_btree_drain () =
  let t = Btree.create ~min_degree:2 () in
  let n = 500 in
  for i = 0 to n - 1 do
    Btree.insert t ~key:(i * 7 mod 101) ~value:i
  done;
  for i = 0 to n - 1 do
    Alcotest.(check bool) "removed" true (Btree.remove t ~key:(i * 7 mod 101) ~value:i);
    if i mod 50 = 0 then check_inv t
  done;
  Alcotest.(check int) "empty" 0 (Btree.length t);
  check_inv t

let test_btree_sample_uniform () =
  let t = Btree.create () in
  for i = 0 to 9 do
    Btree.insert t ~key:i ~value:i
  done;
  let prng = Prng.create 5 in
  let counts = Array.make 10 0 in
  let draws = 20_000 in
  for _ = 1 to draws do
    match Btree.sample_range t prng ~lo:0 ~hi:9 with
    | Some (k, _) -> counts.(k) <- counts.(k) + 1
    | None -> Alcotest.fail "sample failed"
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "key %d near uniform (%d)" i c)
        true
        (abs (c - (draws / 10)) < draws / 10 / 4))
    counts;
  Alcotest.(check bool) "empty range" true (Btree.sample_range t prng ~lo:20 ~hi:30 = None)

let test_btree_of_table () =
  let t = small_table [ (3, 0); (1, 0); (2, 0); (1, 0) ] in
  let b = Btree.of_table t ~column:0 in
  Alcotest.(check int) "length" 4 (Btree.length b);
  Alcotest.(check int) "dup count" 2 (Btree.count_eq b 1);
  check_inv b

let test_btree_min_degree_validation () =
  Alcotest.check_raises "min_degree" (Invalid_argument "Btree.create: min_degree must be >= 2")
    (fun () -> ignore (Btree.create ~min_degree:1 ()))

let test_btree_extreme_keys () =
  let t = Btree.create () in
  Btree.insert t ~key:max_int ~value:1;
  Btree.insert t ~key:min_int ~value:2;
  Btree.insert t ~key:0 ~value:3;
  Alcotest.(check int) "all" 3 (Btree.count_range t ~lo:min_int ~hi:max_int);
  Alcotest.(check int) "upper half" 2 (Btree.count_range t ~lo:0 ~hi:max_int);
  Alcotest.(check bool) "max key present" true (Btree.mem t max_int)

(* ---- Btree: property tests vs a reference model ---------------------- *)

type op = Ins of int * int | Del of int * int | CountRange of int * int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun k v -> Ins (k, v)) (int_range 0 60) (int_range 0 1000));
        (3, map2 (fun k v -> Del (k, v)) (int_range 0 60) (int_range 0 1000));
        (2, map2 (fun a b -> CountRange (min a b, max a b)) (int_range 0 60) (int_range 0 60));
      ])

let op_print = function
  | Ins (k, v) -> Printf.sprintf "Ins(%d,%d)" k v
  | Del (k, v) -> Printf.sprintf "Del(%d,%d)" k v
  | CountRange (a, b) -> Printf.sprintf "Count(%d,%d)" a b

let btree_vs_model =
  QCheck.Test.make ~name:"btree agrees with a sorted-list model" ~count:200
    (QCheck.make
       ~print:(fun ops -> String.concat ";" (List.map op_print ops))
       QCheck.Gen.(list_size (int_range 0 400) op_gen))
    (fun ops ->
      let t = Btree.create ~min_degree:2 () in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Ins (k, v) ->
            Btree.insert t ~key:k ~value:v;
            model := (k, v) :: !model
          | Del (k, v) ->
            let in_model = List.mem (k, v) !model in
            let removed = Btree.remove t ~key:k ~value:v in
            if removed <> in_model then ok := false;
            if in_model then begin
              let dropped = ref false in
              model :=
                List.filter
                  (fun e ->
                    if (not !dropped) && e = (k, v) then begin
                      dropped := true;
                      false
                    end
                    else true)
                  !model
            end
          | CountRange (lo, hi) ->
            let expected =
              List.length (List.filter (fun (k, _) -> k >= lo && k <= hi) !model)
            in
            if Btree.count_range t ~lo ~hi <> expected then ok := false)
        ops;
      (* Final deep comparison. *)
      (match Btree.check_invariants t with Ok () -> () | Error _ -> ok := false);
      if Btree.length t <> List.length !model then ok := false;
      let dumped = ref [] in
      Btree.iter_range t ~lo:min_int ~hi:max_int (fun k v -> dumped := (k, v) :: !dumped);
      let sort l = List.sort compare l in
      if sort !dumped <> sort !model then ok := false;
      (* rank/select consistency *)
      let model_keys = Array.of_list (List.sort compare (List.map fst !model)) in
      for r = 0 to Btree.length t - 1 do
        let k, _ = Btree.nth t r in
        if model_keys.(r) <> k then ok := false
      done;
      !ok)

let btree_rank_select_inverse =
  QCheck.Test.make ~name:"rank_lt and nth are consistent" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (int_range 0 50))
    (fun keys ->
      let t = Btree.create ~min_degree:2 () in
      List.iteri (fun i k -> Btree.insert t ~key:k ~value:i) keys;
      List.for_all
        (fun k ->
          let r = Btree.rank_lt t k in
          (* All entries below rank r have key < k; entry at r (if any) >= k *)
          (r = 0 || fst (Btree.nth t (r - 1)) < k)
          && (r = Btree.length t || fst (Btree.nth t r) >= k))
        keys)

(* ---- Index facade ---------------------------------------------------- *)

let test_index_facade_eq () =
  let t = small_table [ (1, 0); (2, 0); (1, 0) ] in
  let h = Index.build_hash t ~column:0 in
  let o = Index.build_ordered t ~column:0 in
  Alcotest.(check int) "hash count" 2 (Index.count_eq h 1);
  Alcotest.(check int) "ordered count" 2 (Index.count_eq o 1);
  Alcotest.(check bool) "hash nth valid" true (List.mem (Index.nth_eq h 1 0) [ 0; 2 ]);
  Alcotest.(check bool) "ordered nth valid" true (List.mem (Index.nth_eq o 1 1) [ 0; 2 ]);
  Alcotest.(check bool) "range support" true (Index.supports_range o);
  Alcotest.(check bool) "no range support" false (Index.supports_range h);
  Alcotest.check_raises "hash range"
    (Invalid_argument "Index.count_range: hash index cannot answer ranges") (fun () ->
      ignore (Index.count_range h ~lo:0 ~hi:1))

let test_index_facade_range () =
  let t = small_table [ (10, 0); (20, 0); (30, 0); (40, 0) ] in
  let o = Index.build_ordered t ~column:0 in
  Alcotest.(check int) "range count" 2 (Index.count_range o ~lo:15 ~hi:35);
  let rows = ref [] in
  Index.iter_range o ~lo:15 ~hi:35 (fun r -> rows := r :: !rows);
  Alcotest.(check (list int)) "iter rows" [ 2; 1 ] !rows;
  Alcotest.(check bool) "probe cost positive" true (Index.probe_cost o >= 1)

let () =
  Alcotest.run "wj_index"
    [
      ( "hash",
        [
          Alcotest.test_case "build/count/nth" `Quick test_hash_build_count_nth;
          Alcotest.test_case "sample" `Quick test_hash_sample;
          Alcotest.test_case "iter" `Quick test_hash_iter;
        ] );
      ( "btree",
        [
          Alcotest.test_case "empty" `Quick test_btree_empty;
          Alcotest.test_case "sequential" `Quick test_btree_sequential;
          Alcotest.test_case "reverse + duplicates" `Quick test_btree_reverse_and_duplicates;
          Alcotest.test_case "nth_in_range" `Quick test_btree_nth_in_range;
          Alcotest.test_case "iter_range" `Quick test_btree_iter_range;
          Alcotest.test_case "remove simple" `Quick test_btree_remove_simple;
          Alcotest.test_case "remove duplicates by value" `Quick
            test_btree_remove_duplicates_by_value;
          Alcotest.test_case "drain" `Quick test_btree_drain;
          Alcotest.test_case "sample uniform" `Slow test_btree_sample_uniform;
          Alcotest.test_case "of_table" `Quick test_btree_of_table;
          Alcotest.test_case "min_degree validation" `Quick test_btree_min_degree_validation;
          Alcotest.test_case "extreme keys" `Quick test_btree_extreme_keys;
          QCheck_alcotest.to_alcotest btree_vs_model;
          QCheck_alcotest.to_alcotest btree_rank_select_inverse;
        ] );
      ( "facade",
        [
          Alcotest.test_case "equality ops" `Quick test_index_facade_eq;
          Alcotest.test_case "range ops" `Quick test_index_facade_range;
        ] );
    ]
