test/test_util.ml: Alcotest Array Float Fun List Printf QCheck QCheck_alcotest Wj_util
