test/test_tpch.ml: Alcotest Array Float Lazy List Printf Wj_core Wj_exec Wj_storage Wj_tpch
