test/test_stats.ml: Alcotest Array Float List Printf Wj_stats Wj_util
