test/test_ripple.ml: Alcotest Array Float List Printf Wj_core Wj_exec Wj_ripple Wj_stats Wj_storage Wj_util
