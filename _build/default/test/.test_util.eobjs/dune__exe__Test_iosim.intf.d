test/test_iosim.mli:
