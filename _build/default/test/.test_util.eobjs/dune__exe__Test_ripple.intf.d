test/test_ripple.mli:
