test/test_index.ml: Alcotest Array List Printf QCheck QCheck_alcotest String Wj_index Wj_storage Wj_util
