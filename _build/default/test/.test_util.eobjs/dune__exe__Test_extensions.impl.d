test/test_extensions.ml: Alcotest Array Filename Float Fun Gen Hashtbl List Option Printf QCheck QCheck_alcotest String Sys Wj_core Wj_exec Wj_index Wj_sql Wj_stats Wj_storage Wj_tpch Wj_util
