test/test_core.ml: Alcotest Array Float Fun List Option Printf QCheck QCheck_alcotest Wj_core Wj_exec Wj_index Wj_stats Wj_storage Wj_util
