test/test_iosim.ml: Alcotest Printf Wj_core Wj_iosim Wj_util
