test/test_storage.ml: Alcotest Array List QCheck QCheck_alcotest Wj_storage
