test/test_exec.ml: Alcotest Array Fun Hashtbl List Option Printf Wj_core Wj_exec Wj_stats Wj_storage Wj_util
