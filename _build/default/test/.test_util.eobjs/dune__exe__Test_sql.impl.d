test/test_sql.ml: Alcotest Array Float Format Lazy List Printf String Wj_core Wj_exec Wj_sql Wj_stats Wj_storage Wj_tpch
