(* Tests for wj_exec: the exact executor against brute-force evaluation. *)

module Exact = Wj_exec.Exact
module Query = Wj_core.Query
module Registry = Wj_core.Registry
module Walk_plan = Wj_core.Walk_plan
module Table = Wj_storage.Table
module Schema = Wj_storage.Schema
module Value = Wj_storage.Value
module Prng = Wj_util.Prng
module Estimator = Wj_stats.Estimator

let int_table name cols rows =
  let schema = Schema.make (List.map (fun c -> { Schema.name = c; ty = Value.TInt }) cols) in
  let t = Table.create ~name ~schema () in
  List.iter
    (fun r -> ignore (Table.insert t (Array.of_list (List.map (fun x -> Value.Int x) r))))
    rows;
  t

(* Brute-force evaluation of an arbitrary query by enumerating the full
   cross product (only viable on tiny tables). *)
let brute_force q =
  let kq = Query.k q in
  let path = Array.make kq 0 in
  let results = ref [] in
  let rec go pos =
    if pos = kq then begin
      let all_joins = List.for_all (fun c -> Query.check_join q c path) q.Query.joins in
      let all_preds =
        List.init kq Fun.id |> List.for_all (fun p -> Query.row_passes q p path.(p))
      in
      if all_joins && all_preds then results := Array.copy path :: !results
    end
    else
      for row = 0 to Table.length q.Query.tables.(pos) - 1 do
        path.(pos) <- row;
        go (pos + 1)
      done
  in
  go 0;
  !results

let brute_sum q =
  List.fold_left (fun acc p -> acc +. Query.eval_expr q p) 0.0 (brute_force q)

let random_chain_query ?(predicates = []) ?(agg = Estimator.Sum) seed sizes dom =
  let prng = Prng.create seed in
  let tables =
    List.mapi
      (fun i n ->
        ( Printf.sprintf "t%d" i,
          int_table (Printf.sprintf "t%d" i) [ "x"; "y" ]
            (List.init n (fun _ -> [ Prng.int prng dom; Prng.int prng dom ])) ))
      sizes
  in
  let joins =
    List.init (List.length sizes - 1) (fun i ->
        { Query.left = (i, 1); right = (i + 1, 0); op = Query.Eq })
  in
  Query.make ~tables ~joins ~predicates ~agg ~expr:(Query.Col (List.length sizes - 1, 1)) ()

let test_exact_matches_brute_force () =
  List.iter
    (fun seed ->
      let q = random_chain_query seed [ 25; 30; 20 ] 6 in
      let reg = Registry.build_for_query q in
      let r = Exact.aggregate q reg in
      let expected = brute_sum q in
      Alcotest.(check (float 1e-6)) (Printf.sprintf "sum (seed %d)" seed) expected r.value;
      Alcotest.(check int)
        (Printf.sprintf "join size (seed %d)" seed)
        (List.length (brute_force q))
        r.join_size)
    [ 1; 2; 3; 4; 5 ]

let test_exact_with_predicates () =
  let predicates =
    [
      Query.Cmp { table = 0; column = 0; op = Query.Cle; value = Value.Int 3 };
      Query.Cmp { table = 2; column = 1; op = Query.Cge; value = Value.Int 2 };
    ]
  in
  let q = random_chain_query ~predicates 7 [ 30; 30; 30 ] 6 in
  let reg = Registry.build_for_query q in
  let r = Exact.aggregate q reg in
  Alcotest.(check (float 1e-6)) "predicated sum" (brute_sum q) r.value

let test_exact_cyclic () =
  let prng = Prng.create 11 in
  let pairs n = List.init n (fun _ -> [ Prng.int prng 5; Prng.int prng 5 ]) in
  let f = int_table "f" [ "a"; "b" ] (pairs 15) in
  let g = int_table "g" [ "b"; "c" ] (pairs 15) in
  let h = int_table "h" [ "c"; "a" ] (pairs 15) in
  let q =
    Query.make
      ~tables:[ ("f", f); ("g", g); ("h", h) ]
      ~joins:
        [
          { left = (0, 1); right = (1, 0); op = Eq };
          { left = (1, 1); right = (2, 0); op = Eq };
          { left = (2, 1); right = (0, 0); op = Eq };
        ]
      ~agg:Estimator.Count ~expr:(Query.Const 1.0) ()
  in
  let reg = Registry.build_for_query q in
  let r = Exact.aggregate q reg in
  Alcotest.(check int) "triangle count" (List.length (brute_force q)) r.join_size

let test_exact_band_join () =
  let ta = int_table "ta" [ "v" ] (List.init 20 (fun i -> [ i ])) in
  let tb = int_table "tb" [ "v" ] (List.init 20 (fun i -> [ i ])) in
  let q =
    Query.make ~tables:[ ("ta", ta); ("tb", tb) ]
      ~joins:[ { left = (0, 0); right = (1, 0); op = Band { lo = 1; hi = 2 } } ]
      ~agg:Estimator.Count ~expr:(Query.Const 1.0) ()
  in
  let reg = Registry.build_for_query q in
  let r = Exact.aggregate q reg in
  Alcotest.(check int) "band pairs" (List.length (brute_force q)) r.join_size

let test_exact_all_aggregates () =
  let q0 = random_chain_query 13 [ 20; 20 ] 4 in
  let reg = Registry.build_for_query q0 in
  let paths = brute_force q0 in
  let values = List.map (Query.eval_expr q0) paths in
  let n = float_of_int (List.length values) in
  let sum = List.fold_left ( +. ) 0.0 values in
  let mean = sum /. n in
  let var = List.fold_left (fun a v -> a +. ((v -. mean) ** 2.0)) 0.0 values /. n in
  let expect agg expected =
    let q = { q0 with Query.agg } in
    Alcotest.(check (float 1e-6)) (Estimator.agg_to_string agg) expected (Exact.aggregate q reg).value
  in
  expect Estimator.Sum sum;
  expect Estimator.Count n;
  expect Estimator.Avg mean;
  expect Estimator.Variance var;
  expect Estimator.Stdev (sqrt var)

let test_exact_group_aggregate () =
  let q = random_chain_query 17 [ 25; 25 ] 4 in
  let q = { q with Query.group_by = Some (0, 0) } in
  let reg = Registry.build_for_query q in
  let groups = Exact.group_aggregate q reg in
  (* Compare against brute force grouped by the same key. *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun path ->
      let key = Query.group_key q path in
      let v = Query.eval_expr q path in
      Hashtbl.replace tbl key (v +. Option.value ~default:0.0 (Hashtbl.find_opt tbl key)))
    (brute_force q);
  Alcotest.(check int) "group count" (Hashtbl.length tbl) (List.length groups);
  List.iter
    (fun (key, (r : Exact.result)) ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "group %s" (Value.to_display key))
        (Hashtbl.find tbl key) r.value)
    groups;
  (* Sorted by key. *)
  let keys = List.map fst groups in
  Alcotest.(check bool) "sorted" true (List.sort Value.compare keys = keys)

let test_exact_group_requires_clause () =
  let q = random_chain_query 19 [ 5; 5 ] 3 in
  let reg = Registry.build_for_query q in
  Alcotest.check_raises "no group by"
    (Invalid_argument "Exact.group_aggregate: query has no GROUP BY") (fun () ->
      ignore (Exact.group_aggregate q reg))

let test_exact_join_size () =
  let q = random_chain_query 23 [ 30; 30 ] 5 in
  let reg = Registry.build_for_query q in
  Alcotest.(check int) "join_size" (List.length (brute_force q)) (Exact.join_size q reg)

let test_exact_plan_invariance () =
  (* Every walk plan computes the same exact result. *)
  let q = random_chain_query 29 [ 20; 25; 15 ] 5 in
  let reg = Registry.build_for_query q in
  let expected = brute_sum q in
  List.iter
    (fun plan ->
      let r = Exact.aggregate ~plan q reg in
      Alcotest.(check (float 1e-6)) (Walk_plan.describe q plan) expected r.value)
    (Walk_plan.enumerate q reg)

let test_exact_empty_result () =
  let ta = int_table "ta" [ "k" ] [ [ 1 ] ] in
  let tb = int_table "tb" [ "k" ] [ [ 2 ] ] in
  let q =
    Query.make ~tables:[ ("ta", ta); ("tb", tb) ]
      ~joins:[ { left = (0, 0); right = (1, 0); op = Eq } ]
      ~agg:Estimator.Sum ~expr:(Query.Col (1, 0)) ()
  in
  let reg = Registry.build_for_query q in
  let r = Exact.aggregate q reg in
  Alcotest.(check int) "empty join" 0 r.join_size;
  Alcotest.(check (float 0.0)) "zero sum" 0.0 r.value

let test_exact_counts_work () =
  let q = random_chain_query 31 [ 40; 40 ] 5 in
  let reg = Registry.build_for_query q in
  let r = Exact.aggregate q reg in
  Alcotest.(check bool) "rows visited >= table scan" true
    (r.rows_visited >= Table.length q.Query.tables.(0))

let () =
  Alcotest.run "wj_exec"
    [
      ( "exact",
        [
          Alcotest.test_case "matches brute force" `Quick test_exact_matches_brute_force;
          Alcotest.test_case "predicates" `Quick test_exact_with_predicates;
          Alcotest.test_case "cyclic" `Quick test_exact_cyclic;
          Alcotest.test_case "band join" `Quick test_exact_band_join;
          Alcotest.test_case "all aggregates" `Quick test_exact_all_aggregates;
          Alcotest.test_case "group aggregate" `Quick test_exact_group_aggregate;
          Alcotest.test_case "group requires clause" `Quick test_exact_group_requires_clause;
          Alcotest.test_case "join_size" `Quick test_exact_join_size;
          Alcotest.test_case "plan invariance" `Quick test_exact_plan_invariance;
          Alcotest.test_case "empty result" `Quick test_exact_empty_result;
          Alcotest.test_case "cost accounting" `Quick test_exact_counts_work;
        ] );
    ]
