(* Tests for wj_sql: lexer, parser, binder, engine. *)

module Lexer = Wj_sql.Lexer
module Parser = Wj_sql.Parser
module Ast = Wj_sql.Ast
module Binder = Wj_sql.Binder
module Engine = Wj_sql.Engine
module Query = Wj_core.Query
module Value = Wj_storage.Value
module Estimator = Wj_stats.Estimator

(* ---- Lexer ----------------------------------------------------------- *)

let test_lexer_basics () =
  let toks = Lexer.tokenize "SELECT sum(x) FROM t WHERE a <= 3.5 AND b <> 'hi'" in
  Alcotest.(check int) "token count" 16 (List.length toks);
  Alcotest.(check bool) "keyword" true (List.mem (Lexer.KEYWORD "SELECT") toks);
  Alcotest.(check bool) "agg keyword" true (List.mem (Lexer.KEYWORD "SUM") toks);
  Alcotest.(check bool) "ident lowercased" true (List.mem (Lexer.IDENT "x") toks);
  Alcotest.(check bool) "float" true (List.mem (Lexer.FLOAT 3.5) toks);
  Alcotest.(check bool) "string" true (List.mem (Lexer.STRING "hi") toks);
  Alcotest.(check bool) "ne" true (List.mem Lexer.NE toks);
  Alcotest.(check bool) "le" true (List.mem Lexer.LE toks);
  Alcotest.(check bool) "eof last" true (List.nth toks 15 = Lexer.EOF)

let test_lexer_case_insensitive_keywords () =
  let toks = Lexer.tokenize "select Sum(X) from T" in
  Alcotest.(check bool) "select" true (List.mem (Lexer.KEYWORD "SELECT") toks);
  Alcotest.(check bool) "idents lowercase" true (List.mem (Lexer.IDENT "t") toks)

let test_lexer_operators () =
  let toks = Lexer.tokenize "( ) , . * + - / = < > <= >= <> !=" in
  Alcotest.(check int) "count" 16 (List.length toks);
  Alcotest.(check bool) "bang-eq is NE" true
    (List.filter (fun t -> t = Lexer.NE) toks |> List.length = 2)

let test_lexer_errors () =
  (try
     ignore (Lexer.tokenize "SELECT 'unterminated");
     Alcotest.fail "expected Lex_error"
   with Lexer.Lex_error (msg, _) ->
     Alcotest.(check string) "message" "unterminated string literal" msg);
  try
    ignore (Lexer.tokenize "SELECT #");
    Alcotest.fail "expected Lex_error"
  with Lexer.Lex_error (_, off) -> Alcotest.(check int) "offset" 7 off

(* ---- Parser ---------------------------------------------------------- *)

let test_parser_full_statement () =
  let s =
    Parser.parse
      {| SELECT ONLINE SUM(l_price * (1 - l_disc)), COUNT(*)
         FROM customer c, orders, lineitem
         WHERE c.key = o_key AND l_ship > DATE '1995-03-15'
           AND seg BETWEEN 1 AND 3 AND flag IN ('A', 'R')
         GROUP BY c.seg
         WITHINTIME 20 CONFIDENCE 95 REPORTINTERVAL 1 |}
  in
  Alcotest.(check bool) "online" true s.Ast.online;
  Alcotest.(check int) "items" 2 (List.length s.items);
  Alcotest.(check int) "tables" 3 (List.length s.from);
  Alcotest.(check bool) "alias" true (List.hd s.from = ("customer", Some "c"));
  Alcotest.(check int) "conditions" 4 (List.length s.where);
  Alcotest.(check bool) "group by" true (s.group_by <> None);
  Alcotest.(check bool) "withintime" true (s.within_time = Some 20.0);
  Alcotest.(check bool) "confidence" true (s.confidence = Some 95.0);
  Alcotest.(check bool) "reportinterval" true (s.report_interval = Some 1.0)

let test_parser_condition_classification () =
  let s = Parser.parse "SELECT COUNT(*) FROM a, b WHERE a.x = b.y AND a.z < 5" in
  (match s.Ast.where with
  | [ Ast.C_join (l, r); Ast.C_cmp (c, Ast.Op_lt, Ast.L_int 5) ] ->
    Alcotest.(check string) "join left" "x" l.column;
    Alcotest.(check string) "join right" "y" r.column;
    Alcotest.(check string) "cmp col" "z" c.column
  | _ -> Alcotest.fail "unexpected where shape");
  Alcotest.(check bool) "not online" false s.online

let test_parser_expr_precedence () =
  let s = Parser.parse "SELECT SUM(a + b * c) FROM t" in
  match (List.hd s.Ast.items).arg with
  | Some (Ast.E_add (Ast.E_col _, Ast.E_mul (Ast.E_col _, Ast.E_col _))) -> ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parser_parens_and_neg () =
  let s = Parser.parse "SELECT SUM((a - 1) / -b) FROM t" in
  match (List.hd s.Ast.items).arg with
  | Some (Ast.E_div (Ast.E_sub _, Ast.E_neg _)) -> ()
  | _ -> Alcotest.fail "parens/neg wrong"

let test_parser_date_literal () =
  let s = Parser.parse "SELECT COUNT(*) FROM t WHERE d < DATE '1994-06-30'" in
  match s.Ast.where with
  | [ Ast.C_cmp (_, Ast.Op_lt, Ast.L_date day) ] ->
    Alcotest.(check string) "roundtrip" "1994-06-30" (Wj_storage.Date_codec.to_string day)
  | _ -> Alcotest.fail "expected date literal"

let expect_parse_error sql =
  try
    ignore (Parser.parse sql);
    Alcotest.fail ("expected Parse_error for: " ^ sql)
  with Parser.Parse_error _ -> ()

let test_parser_errors () =
  expect_parse_error "SELECT FROM t";
  expect_parse_error "SELECT SUM(x) WHERE a = b";
  expect_parse_error "SELECT SUM(x) FROM t WHERE a BETWEEN 1 2";
  expect_parse_error "SELECT AVG(*) FROM t";
  expect_parse_error "SELECT SUM(x) FROM t garbage garbage garbage";
  expect_parse_error "SELECT SUM(x) FROM t WHERE a < b";
  (* col-col must be = *)
  expect_parse_error "SELECT SUM(x) FROM t WHERE d = DATE '1994-13-01'"

let test_parser_pp_roundtrip () =
  let sql =
    "SELECT ONLINE SUM(a * b) FROM t1, t2 u WHERE t1.x = u.y AND a > 3 GROUP BY t1.g WITHINTIME 5"
  in
  let s = Parser.parse sql in
  let printed = Format.asprintf "%a" Ast.pp_statement s in
  let s2 = Parser.parse printed in
  Alcotest.(check bool) "parse(pp(parse)) = parse" true (s = s2)

(* ---- Binder + Engine ------------------------------------------------- *)

let dataset = lazy (Wj_tpch.Generator.generate ~sf:0.005 ())
let catalog () = Wj_tpch.Generator.catalog (Lazy.force dataset)

let bind sql = Binder.bind (catalog ()) (Parser.parse sql)

let test_binder_joins_and_predicates () =
  let b =
    bind
      {| SELECT SUM(l_extendedprice) FROM customer, orders, lineitem
         WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
           AND c_mktsegment = 'BUILDING' AND o_orderdate < DATE '1995-03-15' |}
  in
  let _, q = List.hd b.Binder.queries in
  Alcotest.(check int) "joins" 2 (List.length q.Query.joins);
  Alcotest.(check int) "predicates" 2 (List.length q.Query.predicates);
  Alcotest.(check int) "tables" 3 (Query.k q);
  Alcotest.(check bool) "agg" true (q.Query.agg = Estimator.Sum)

let test_binder_aliases () =
  let b =
    bind
      {| SELECT COUNT(*) FROM nation n1, nation n2, supplier
         WHERE n1.n_nationkey = s_nationkey AND n2.n_nationkey = s_nationkey |}
  in
  let _, q = List.hd b.Binder.queries in
  Alcotest.(check int) "three positions" 3 (Query.k q);
  Alcotest.(check bool) "aliases share table" true (q.Query.tables.(0) == q.Query.tables.(1))

let expect_bind_error sql =
  try
    ignore (bind sql);
    Alcotest.fail ("expected Bind_error for: " ^ sql)
  with Binder.Bind_error _ -> ()

let test_binder_errors () =
  expect_bind_error "SELECT SUM(x) FROM ghosts";
  expect_bind_error "SELECT SUM(zzz) FROM customer";
  (* c_custkey is unique but joining orders brings ambiguity of nothing;
     ambiguous bare column: both orders and lineitem have no shared names in
     TPC-H, so use duplicated aliases instead. *)
  expect_bind_error "SELECT COUNT(*) FROM customer c, orders c WHERE c_custkey = o_custkey";
  (* string literal on numeric column *)
  expect_bind_error
    "SELECT COUNT(*) FROM customer, orders WHERE c_custkey = o_custkey AND c_acctbal = 'x'";
  (* joining on a string column *)
  expect_bind_error
    "SELECT COUNT(*) FROM customer, orders WHERE c_mktsegment = o_orderstatus";
  (* disconnected join graph *)
  expect_bind_error "SELECT COUNT(*) FROM customer, orders";
  (* ambiguous column: nation joined twice, bare n_name *)
  expect_bind_error
    "SELECT COUNT(*) FROM nation n1, nation n2, supplier WHERE n1.n_nationkey = s_nationkey AND n2.n_nationkey = s_nationkey AND n_name = 'FRANCE'"

let test_binder_confidence_normalisation () =
  let b = bind "SELECT ONLINE COUNT(*) FROM customer, orders WHERE c_custkey = o_custkey CONFIDENCE 99" in
  Alcotest.(check (float 1e-9)) "percent" 0.99 b.Binder.confidence;
  let b2 = bind "SELECT COUNT(*) FROM customer, orders WHERE c_custkey = o_custkey" in
  Alcotest.(check (float 1e-9)) "default" 0.95 b2.Binder.confidence

let test_engine_exact_matches_direct () =
  let d = Lazy.force dataset in
  let cat = catalog () in
  let r =
    Engine.execute cat
      {| SELECT SUM(l_extendedprice * (1 - l_discount)), COUNT(*)
         FROM customer, orders, lineitem
         WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey |}
  in
  (* Compare with the direct API. *)
  let q = Wj_tpch.Queries.build ~variant:Barebone Wj_tpch.Queries.Q3 d in
  let reg = Wj_tpch.Queries.registry q in
  let expected = Wj_exec.Exact.aggregate q reg in
  (match r.Engine.items with
  | [ (_, Engine.Exact_scalar sum); (_, Engine.Exact_scalar count) ] ->
    Alcotest.(check (float 1.0)) "sum" expected.value sum.Wj_exec.Exact.value;
    Alcotest.(check (float 0.0)) "count"
      (float_of_int expected.join_size)
      count.Wj_exec.Exact.value
  | _ -> Alcotest.fail "expected two exact scalars");
  Alcotest.(check bool) "render non-empty" true (String.length (Engine.render r) > 0)

let test_engine_online_statement () =
  let cat = catalog () in
  let r =
    Engine.execute ~seed:5 cat
      {| SELECT ONLINE COUNT(*) FROM customer, orders, lineitem
         WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
         WITHINTIME 0.5 |}
  in
  let exact =
    Engine.execute cat
      {| SELECT COUNT(*) FROM customer, orders, lineitem
         WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey |}
  in
  match (r.Engine.items, exact.Engine.items) with
  | [ (_, Engine.Online_scalar o) ], [ (_, Engine.Exact_scalar e) ] ->
    let err = Float.abs (o.Wj_core.Online.final.estimate -. e.Wj_exec.Exact.value) in
    Alcotest.(check bool)
      (Printf.sprintf "online %.1f ~ exact %.1f" o.Wj_core.Online.final.estimate
         e.Wj_exec.Exact.value)
      true
      (err < (4.0 *. o.Wj_core.Online.final.half_width) +. 1.0)
  | _ -> Alcotest.fail "unexpected outcome shapes"

let test_engine_group_by () =
  let cat = catalog () in
  let r =
    Engine.execute cat
      {| SELECT SUM(o_totalprice) FROM customer, orders
         WHERE c_custkey = o_custkey GROUP BY c_mktsegment |}
  in
  match r.Engine.items with
  | [ (_, Engine.Exact_groups groups) ] ->
    Alcotest.(check int) "five segments" 5 (List.length groups)
  | _ -> Alcotest.fail "expected groups"

let test_engine_online_group_by () =
  let cat = catalog () in
  let r =
    Engine.execute ~seed:3 cat
      {| SELECT ONLINE COUNT(*) FROM customer, orders
         WHERE c_custkey = o_custkey GROUP BY c_mktsegment WITHINTIME 0.4 |}
  in
  match r.Engine.items with
  | [ (_, Engine.Online_groups g) ] ->
    Alcotest.(check bool) "groups present" true (List.length g.Wj_core.Online.groups = 5)
  | _ -> Alcotest.fail "expected online groups"

let () =
  Alcotest.run "wj_sql"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "case insensitivity" `Quick test_lexer_case_insensitive_keywords;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "full statement" `Quick test_parser_full_statement;
          Alcotest.test_case "condition classification" `Quick
            test_parser_condition_classification;
          Alcotest.test_case "expr precedence" `Quick test_parser_expr_precedence;
          Alcotest.test_case "parens and neg" `Quick test_parser_parens_and_neg;
          Alcotest.test_case "date literal" `Quick test_parser_date_literal;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "pp roundtrip" `Quick test_parser_pp_roundtrip;
        ] );
      ( "binder",
        [
          Alcotest.test_case "joins and predicates" `Quick test_binder_joins_and_predicates;
          Alcotest.test_case "aliases" `Quick test_binder_aliases;
          Alcotest.test_case "errors" `Quick test_binder_errors;
          Alcotest.test_case "confidence" `Quick test_binder_confidence_normalisation;
        ] );
      ( "engine",
        [
          Alcotest.test_case "exact matches direct API" `Quick test_engine_exact_matches_direct;
          Alcotest.test_case "online statement" `Slow test_engine_online_statement;
          Alcotest.test_case "group by" `Quick test_engine_group_by;
          Alcotest.test_case "online group by" `Slow test_engine_online_group_by;
        ] );
    ]
