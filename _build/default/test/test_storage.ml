(* Tests for wj_storage: Value, Schema, Table, Catalog, Date_codec. *)

module Value = Wj_storage.Value
module Schema = Wj_storage.Schema
module Table = Wj_storage.Table
module Catalog = Wj_storage.Catalog
module Date_codec = Wj_storage.Date_codec

(* ---- Value ----------------------------------------------------------- *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Value.Int n) (int_range (-1000) 1000);
        map (fun f -> Value.Float f) (float_range (-1000.0) 1000.0);
        map (fun s -> Value.Str s) (string_size (int_range 0 5));
        return Value.Null;
      ])

let value_arb = QCheck.make ~print:Value.to_display value_gen

let test_value_accessors () =
  Alcotest.(check int) "to_int" 5 (Value.to_int (Int 5));
  Alcotest.(check (float 0.0)) "to_float of int" 5.0 (Value.to_float (Int 5));
  Alcotest.(check (float 0.0)) "to_float" 2.5 (Value.to_float (Float 2.5));
  Alcotest.(check string) "to_string_exn" "x" (Value.to_string_exn (Str "x"));
  Alcotest.check_raises "to_int of str" (Invalid_argument "Value.to_int: not an Int")
    (fun () -> ignore (Value.to_int (Str "a")));
  Alcotest.check_raises "to_float of null"
    (Invalid_argument "Value.to_float: not numeric") (fun () ->
      ignore (Value.to_float Null))

let test_value_equal () =
  Alcotest.(check bool) "int=int" true (Value.equal (Int 3) (Int 3));
  Alcotest.(check bool) "int=float" true (Value.equal (Int 3) (Float 3.0));
  Alcotest.(check bool) "str<>int" false (Value.equal (Str "3") (Int 3));
  Alcotest.(check bool) "null=null" true (Value.equal Null Null);
  Alcotest.(check bool) "null<>int" false (Value.equal Null (Int 0))

let test_value_compare_cross_type () =
  Alcotest.(check bool) "null smallest" true (Value.compare Null (Int min_int) < 0);
  Alcotest.(check bool) "numeric < str" true (Value.compare (Int 999) (Str "") < 0);
  Alcotest.(check bool) "int/float numeric" true (Value.compare (Int 2) (Float 2.5) < 0)

let value_compare_total_order =
  QCheck.Test.make ~name:"compare is antisymmetric" ~count:1000
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      let c1 = Value.compare a b and c2 = Value.compare b a in
      (c1 = 0 && c2 = 0) || (c1 < 0 && c2 > 0) || (c1 > 0 && c2 < 0))

let value_compare_transitive =
  QCheck.Test.make ~name:"compare is transitive" ~count:1000
    (QCheck.triple value_arb value_arb value_arb) (fun (a, b, c) ->
      let sorted = List.sort Value.compare [ a; b; c ] in
      match sorted with
      | [ x; y; z ] -> Value.compare x y <= 0 && Value.compare y z <= 0 && Value.compare x z <= 0
      | _ -> false)

let test_value_type_of () =
  Alcotest.(check bool) "int" true (Value.type_of (Int 1) = Some Value.TInt);
  Alcotest.(check bool) "null" true (Value.type_of Null = None)

(* ---- Schema ---------------------------------------------------------- *)

let sample_schema () =
  Schema.make
    [ { Schema.name = "id"; ty = Value.TInt }; { name = "price"; ty = TFloat };
      { name = "label"; ty = TStr } ]

let test_schema_basics () =
  let s = sample_schema () in
  Alcotest.(check int) "arity" 3 (Schema.arity s);
  Alcotest.(check (option int)) "find id" (Some 0) (Schema.find s "id");
  Alcotest.(check (option int)) "find label" (Some 2) (Schema.find s "label");
  Alcotest.(check (option int)) "find missing" None (Schema.find s "nope");
  Alcotest.(check int) "find_exn" 1 (Schema.find_exn s "price");
  Alcotest.(check bool) "ty_of" true (Schema.ty_of s 1 = Value.TFloat)

let test_schema_errors () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Schema.make: duplicate column id")
    (fun () ->
      ignore
        (Schema.make [ { Schema.name = "id"; ty = TInt }; { name = "id"; ty = TStr } ]));
  Alcotest.check_raises "empty" (Invalid_argument "Schema.make: empty column list")
    (fun () -> ignore (Schema.make []))

let test_schema_check_tuple () =
  let s = sample_schema () in
  Alcotest.(check bool) "good" true
    (Schema.check_tuple s [| Int 1; Float 2.0; Str "a" |]);
  Alcotest.(check bool) "null ok" true (Schema.check_tuple s [| Null; Null; Null |]);
  Alcotest.(check bool) "bad type" false
    (Schema.check_tuple s [| Int 1; Str "x"; Str "a" |]);
  Alcotest.(check bool) "bad arity" false (Schema.check_tuple s [| Int 1 |])

(* ---- Table ----------------------------------------------------------- *)

let test_table_insert_fetch () =
  let t = Table.create ~name:"t" ~schema:(sample_schema ()) () in
  let r0 = Table.insert t [| Int 1; Float 10.0; Str "a" |] in
  let r1 = Table.insert t [| Int 2; Float 20.0; Str "b" |] in
  Alcotest.(check int) "row ids dense" 0 r0;
  Alcotest.(check int) "row ids dense" 1 r1;
  Alcotest.(check int) "length" 2 (Table.length t);
  Alcotest.(check int) "int_cell" 2 (Table.int_cell t 1 0);
  Alcotest.(check (float 0.0)) "float_cell" 20.0 (Table.float_cell t 1 1);
  Alcotest.(check bool) "cell" true (Value.equal (Str "a") (Table.cell t 0 2))

let test_table_schema_enforced () =
  let t = Table.create ~name:"t" ~schema:(sample_schema ()) () in
  Alcotest.check_raises "bad tuple"
    (Invalid_argument "Table.insert(t): tuple does not match schema") (fun () ->
      ignore (Table.insert t [| Str "x"; Float 1.0; Str "y" |]))

let test_table_iteration () =
  let t = Table.create ~name:"t" ~schema:(sample_schema ()) () in
  for i = 0 to 9 do
    ignore (Table.insert t [| Int i; Float (float_of_int i); Str "s" |])
  done;
  let sum = Table.fold (fun acc row -> acc + Value.to_int row.(0)) 0 t in
  Alcotest.(check int) "fold" 45 sum;
  let count = ref 0 in
  Table.iteri (fun i row -> if Value.to_int row.(0) = i then incr count) t;
  Alcotest.(check int) "iteri aligned" 10 !count;
  Alcotest.(check int) "column_index" 1 (Table.column_index t "price")

(* ---- Catalog --------------------------------------------------------- *)

let test_catalog () =
  let c = Catalog.create () in
  let t = Table.create ~name:"users" ~schema:(sample_schema ()) () in
  Catalog.add_table c t;
  Alcotest.(check bool) "found" true (Catalog.table c "users" <> None);
  Alcotest.(check bool) "missing" true (Catalog.table c "ghosts" = None);
  Alcotest.(check int) "tables" 1 (List.length (Catalog.tables c));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Catalog.add_table: duplicate table users") (fun () ->
      Catalog.add_table c t)

let test_catalog_indexes () =
  let c = Catalog.create () in
  let t = Table.create ~name:"users" ~schema:(sample_schema ()) () in
  Catalog.add_table c t;
  Alcotest.(check bool) "no index" false (Catalog.has_index c ~table:"users" ~column:"id");
  Catalog.register_index c ~table:"users" ~column:"id" Catalog.Hash;
  Alcotest.(check bool) "hash" true
    (Catalog.indexed c ~table:"users" ~column:"id" = Some Catalog.Hash);
  Catalog.register_index c ~table:"users" ~column:"id" Catalog.Ordered;
  Alcotest.(check bool) "ordered wins" true
    (Catalog.indexed c ~table:"users" ~column:"id" = Some Catalog.Ordered);
  Alcotest.check_raises "unknown column"
    (Invalid_argument "Catalog.register_index: no column zz in users") (fun () ->
      Catalog.register_index c ~table:"users" ~column:"zz" Catalog.Hash)

(* ---- Date_codec ------------------------------------------------------ *)

let test_dates_known () =
  Alcotest.(check int) "epoch" 0 (Date_codec.of_ymd 1992 1 1);
  Alcotest.(check int) "second day" 1 (Date_codec.of_ymd 1992 1 2);
  (* 1992 is a leap year: Jan 31 + Feb 29 = 60 days before Mar 1. *)
  Alcotest.(check int) "1992-03-01" 60 (Date_codec.of_ymd 1992 3 1);
  Alcotest.(check string) "to_string" "1995-03-15"
    (Date_codec.to_string (Date_codec.of_ymd 1995 3 15))

let test_dates_roundtrip_all () =
  for day = Date_codec.min_day to Date_codec.max_day do
    let y, m, d = Date_codec.to_ymd day in
    Alcotest.(check int) "roundtrip" day (Date_codec.of_ymd y m d)
  done

let test_dates_monotone () =
  let prev = ref (-1) in
  for y = 1992 to 1998 do
    for m = 1 to 12 do
      let day = Date_codec.of_ymd y m 1 in
      Alcotest.(check bool) "monotone" true (day > !prev);
      prev := day
    done
  done

let test_dates_errors () =
  Alcotest.check_raises "year" (Invalid_argument "Dates.of_ymd: year out of range")
    (fun () -> ignore (Date_codec.of_ymd 1991 1 1));
  Alcotest.check_raises "month" (Invalid_argument "Dates.of_ymd: month out of range")
    (fun () -> ignore (Date_codec.of_ymd 1995 13 1));
  Alcotest.check_raises "day" (Invalid_argument "Dates.of_ymd: day out of range")
    (fun () -> ignore (Date_codec.of_ymd 1995 2 29))

let () =
  Alcotest.run "wj_storage"
    [
      ( "value",
        [
          Alcotest.test_case "accessors" `Quick test_value_accessors;
          Alcotest.test_case "equal" `Quick test_value_equal;
          Alcotest.test_case "compare cross-type" `Quick test_value_compare_cross_type;
          Alcotest.test_case "type_of" `Quick test_value_type_of;
          QCheck_alcotest.to_alcotest value_compare_total_order;
          QCheck_alcotest.to_alcotest value_compare_transitive;
        ] );
      ( "schema",
        [
          Alcotest.test_case "basics" `Quick test_schema_basics;
          Alcotest.test_case "errors" `Quick test_schema_errors;
          Alcotest.test_case "check_tuple" `Quick test_schema_check_tuple;
        ] );
      ( "table",
        [
          Alcotest.test_case "insert/fetch" `Quick test_table_insert_fetch;
          Alcotest.test_case "schema enforced" `Quick test_table_schema_enforced;
          Alcotest.test_case "iteration" `Quick test_table_iteration;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "tables" `Quick test_catalog;
          Alcotest.test_case "indexes" `Quick test_catalog_indexes;
        ] );
      ( "dates",
        [
          Alcotest.test_case "known values" `Quick test_dates_known;
          Alcotest.test_case "roundtrip all days" `Quick test_dates_roundtrip_all;
          Alcotest.test_case "monotone" `Quick test_dates_monotone;
          Alcotest.test_case "errors" `Quick test_dates_errors;
        ] );
    ]
