lib/index/index.ml: Btree Hash_index
