lib/index/hash_index.mli: Wj_storage Wj_util
