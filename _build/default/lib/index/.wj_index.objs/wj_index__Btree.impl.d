lib/index/btree.ml: Array Printf Wj_storage Wj_util
