lib/index/hash_index.ml: Array Hashtbl Wj_storage Wj_util
