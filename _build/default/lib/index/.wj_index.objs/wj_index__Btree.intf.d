lib/index/btree.mli: Wj_storage Wj_util
