lib/index/index.mli: Btree Hash_index Wj_storage
