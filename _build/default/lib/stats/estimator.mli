(** Online-aggregation estimators (Appendix A of the paper).

    Each random walk i contributes a pair (u(i), v(i)): u(i) = 1/p(γ_i) for
    a successful walk and 0 for a failed one; v(i) is the aggregated
    expression evaluated on the sampled path.  The estimators below are
    unbiased (SUM, COUNT) or consistent ratio estimators (AVG, VARIANCE,
    STDEV), each with a per-walk variance estimate σ̃²_n such that the
    confidence half-width is z_α σ̃_n / √n (Eq. 5).

    VARIANCE and STDEV are not spelled out in the paper's appendix (it
    defers to Haas 1997); we implement them as ratio estimators with
    delta-method variances over the observation vector (u, uv, uv²). *)

type agg = Sum | Count | Avg | Variance | Stdev

val agg_to_string : agg -> string

type t

val create : agg -> t
val agg : t -> agg

val add : t -> u:float -> v:float -> unit
(** Record a successful walk with Horvitz–Thompson weight [u] (= 1/p) and
    expression value [v].  Raises [Invalid_argument] when [u <= 0]. *)

val add_failure : t -> unit
(** Record a failed walk: it stays in the probability space and counts as a
    0-valued observation (§3.1). *)

val add_failures : t -> int -> unit
(** Record [k] failed walks in O(1).  Group-by maintenance uses this to pad
    every group's estimator up to the global walk count. *)

val n : t -> int
(** Total walks, successful plus failed. *)

val successes : t -> int

val estimate : t -> float
(** Current point estimate; [nan] while undefined (e.g. AVG with no
    successful walk yet). *)

val variance_of_walk : t -> float
(** σ̃²_n, the estimated variance of a single-walk observation; never
    negative. *)

val half_width : t -> confidence:float -> float
(** z_α σ̃_n / √n; [infinity] when fewer than 2 walks. *)

val interval : t -> confidence:float -> float * float
(** [estimate ± half_width]. *)

val merge : t -> t -> t
(** Combine estimators of the same aggregate from independent walk streams
    (e.g. the optimizer's per-plan trial walks).
    Raises [Invalid_argument] when the aggregates differ. *)
