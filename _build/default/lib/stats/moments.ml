type kahan = { mutable total : float; mutable compensation : float }

let kahan () = { total = 0.0; compensation = 0.0 }

let kadd k x =
  let y = x -. k.compensation in
  let t = k.total +. y in
  k.compensation <- (t -. k.total) -. y;
  k.total <- t

let ksum k = k.total

type t = {
  dim : int;
  mutable count : int;
  sums : kahan array; (* dim entries *)
  cross : kahan array; (* upper triangle incl. diagonal, row-major *)
}

let tri_size dim = dim * (dim + 1) / 2

(* Index of the (i, j) cross-sum with i <= j. *)
let tri_index dim i j =
  let i, j = if i <= j then (i, j) else (j, i) in
  (i * ((2 * dim) - i - 1) / 2) + j

let create ~dim =
  if dim <= 0 then invalid_arg "Moments.create: dim must be positive";
  {
    dim;
    count = 0;
    sums = Array.init dim (fun _ -> kahan ());
    cross = Array.init (tri_size dim) (fun _ -> kahan ());
  }

let add t obs =
  if Array.length obs <> t.dim then invalid_arg "Moments.add: dimension mismatch";
  t.count <- t.count + 1;
  for i = 0 to t.dim - 1 do
    kadd t.sums.(i) obs.(i);
    for j = i to t.dim - 1 do
      kadd t.cross.(tri_index t.dim i j) (obs.(i) *. obs.(j))
    done
  done

let add_zeros t k =
  if k < 0 then invalid_arg "Moments.add_zeros: negative count";
  t.count <- t.count + k

let n t = t.count
let sum t i = ksum t.sums.(i)
let mean t i = if t.count = 0 then 0.0 else sum t i /. float_of_int t.count

let sample_covariance t i j =
  if t.count < 2 then 0.0
  else begin
    let n = float_of_int t.count in
    let sij = ksum t.cross.(tri_index t.dim i j) in
    (sij -. (sum t i *. sum t j /. n)) /. (n -. 1.0)
  end

let sample_variance t i = sample_covariance t i i

let covariance_matrix t =
  Array.init t.dim (fun i -> Array.init t.dim (fun j -> sample_covariance t i j))

let merge a b =
  if a.dim <> b.dim then invalid_arg "Moments.merge: dimension mismatch";
  let out = create ~dim:a.dim in
  out.count <- a.count + b.count;
  for i = 0 to a.dim - 1 do
    kadd out.sums.(i) (ksum a.sums.(i));
    kadd out.sums.(i) (ksum b.sums.(i))
  done;
  for k = 0 to tri_size a.dim - 1 do
    kadd out.cross.(k) (ksum a.cross.(k));
    kadd out.cross.(k) (ksum b.cross.(k))
  done;
  out
