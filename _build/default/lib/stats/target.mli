(** Stopping criteria for online aggregation.

    The user either fixes the confidence half-width (±1% of the estimate, or
    an absolute bound) and watches it shrink, or fixes a time budget
    (WITHINTIME) and takes the best estimate available (§2, problem
    formulation). *)

type width =
  | Relative of float  (** half-width <= fraction * |estimate| *)
  | Absolute of float  (** half-width <= bound *)

type t = { confidence : float; width : width }

val relative : ?confidence:float -> float -> t
(** [relative 0.01] targets ±1% at 95% confidence (the paper's default). *)

val absolute : ?confidence:float -> float -> t

val reached : t -> estimate:float -> half_width:float -> bool
(** True when the interval is tight enough.  A non-finite estimate or
    half-width never satisfies the target. *)
