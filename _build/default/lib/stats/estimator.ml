type agg = Sum | Count | Avg | Variance | Stdev

let agg_to_string = function
  | Sum -> "SUM"
  | Count -> "COUNT"
  | Avg -> "AVG"
  | Variance -> "VARIANCE"
  | Stdev -> "STDEV"

(* Observation vector per walk: index 0 = u, 1 = u*v, 2 = u*v^2. *)
type t = { agg : agg; moments : Moments.t; mutable successes : int }

let iu = 0
let iuv = 1
let iuv2 = 2

let create agg = { agg; moments = Moments.create ~dim:3; successes = 0 }
let agg t = t.agg

let add t ~u ~v =
  if u <= 0.0 then invalid_arg "Estimator.add: weight must be positive";
  t.successes <- t.successes + 1;
  Moments.add t.moments [| u; u *. v; u *. v *. v |]

let add_failure t = Moments.add t.moments [| 0.0; 0.0; 0.0 |]
let add_failures t k = Moments.add_zeros t.moments k
let n t = Moments.n t.moments
let successes t = t.successes

let ratio t num den =
  let d = Moments.mean t.moments den in
  if d = 0.0 then nan else Moments.mean t.moments num /. d

let estimate t =
  match t.agg with
  | Sum -> Moments.mean t.moments iuv
  | Count -> Moments.mean t.moments iu
  | Avg -> ratio t iuv iu
  | Variance ->
    let m2 = ratio t iuv2 iu and m1 = ratio t iuv iu in
    if Float.is_nan m2 then nan else m2 -. (m1 *. m1)
  | Stdev ->
    let m2 = ratio t iuv2 iu and m1 = ratio t iuv iu in
    if Float.is_nan m2 then nan else sqrt (Float.max 0.0 (m2 -. (m1 *. m1)))

(* Delta-method variance for g(mean vector): grad' Sigma grad where Sigma is
   the sample covariance of one observation. *)
let delta_variance t grad =
  let sigma = Moments.covariance_matrix t.moments in
  let acc = ref 0.0 in
  for i = 0 to 2 do
    for j = 0 to 2 do
      acc := !acc +. (grad.(i) *. sigma.(i).(j) *. grad.(j))
    done
  done;
  Float.max 0.0 !acc

let variance_of_walk t =
  let m = t.moments in
  if Moments.n m < 2 then 0.0
  else begin
    match t.agg with
    | Sum -> Moments.sample_variance m iuv
    | Count -> Moments.sample_variance m iu
    | Avg ->
      (* σ² = (Tn2(uv) − 2R·Tn11(uv,u) + R²·Tn2(u)) / Tn(u)²  (Appendix A) *)
      let tu = Moments.mean m iu in
      if tu = 0.0 then 0.0
      else begin
        let r = Moments.mean m iuv /. tu in
        let v =
          (Moments.sample_variance m iuv
          -. (2.0 *. r *. Moments.sample_covariance m iuv iu)
          +. (r *. r *. Moments.sample_variance m iu))
          /. (tu *. tu)
        in
        Float.max 0.0 v
      end
    | Variance | Stdev ->
      let tu = Moments.mean m iu in
      if tu = 0.0 then 0.0
      else begin
        (* g(a,b,c) = a/c − (b/c)² over (c,b,a) = (u, uv, uv²) means. *)
        let a = Moments.mean m iuv2
        and b = Moments.mean m iuv
        and c = tu in
        let grad =
          [|
            (* d/du *) (-.a /. (c *. c)) +. (2.0 *. b *. b /. (c *. c *. c));
            (* d/duv *) -2.0 *. b /. (c *. c);
            (* d/duv2 *) 1.0 /. c;
          |]
        in
        let var_of_var = delta_variance t grad in
        match t.agg with
        | Variance -> var_of_var
        | Stdev ->
          let sd = estimate t in
          if (not (Float.is_finite sd)) || sd <= 0.0 then var_of_var
          else var_of_var /. (4.0 *. sd *. sd)
        | Sum | Count | Avg -> assert false
      end
  end

let half_width t ~confidence =
  let count = n t in
  if count < 2 then infinity
  else begin
    let z = Wj_util.Normal.z_of_confidence confidence in
    z *. sqrt (variance_of_walk t) /. sqrt (float_of_int count)
  end

let interval t ~confidence =
  let e = estimate t and h = half_width t ~confidence in
  (e -. h, e +. h)

let merge a b =
  if a.agg <> b.agg then invalid_arg "Estimator.merge: aggregate mismatch";
  {
    agg = a.agg;
    moments = Moments.merge a.moments b.moments;
    successes = a.successes + b.successes;
  }
