lib/stats/target.mli:
