lib/stats/estimator.ml: Array Float Moments Wj_util
