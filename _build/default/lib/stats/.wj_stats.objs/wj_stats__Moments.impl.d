lib/stats/moments.ml: Array
