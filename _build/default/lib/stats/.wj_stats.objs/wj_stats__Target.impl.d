lib/stats/target.ml: Float
