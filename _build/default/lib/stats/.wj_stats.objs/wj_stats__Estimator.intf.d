lib/stats/estimator.mli:
