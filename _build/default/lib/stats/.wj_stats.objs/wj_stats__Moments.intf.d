lib/stats/moments.mli:
