(** Running power sums with compensated accumulation.

    Appendix A's estimators are all built from three sample functionals over
    the per-walk observations f(i):

      Tn(f)        the sample mean,
      Tn,2(f)      the sample variance (n-1 normalised),
      Tn,1,1(f,h)  the sample covariance.

    Horvitz–Thompson weights can be very large (1/p is of the order of the
    join size), so sums of squares span many magnitudes; Kahan summation
    keeps them accurate. *)

type kahan

val kahan : unit -> kahan
val kadd : kahan -> float -> unit
val ksum : kahan -> float

type t
(** Joint moments of a stream of observation vectors of fixed dimension. *)

val create : dim:int -> t
(** Tracks sums, sums of squares and all pairwise cross-sums of a
    [dim]-dimensional stream. *)

val add : t -> float array -> unit
(** Raises [Invalid_argument] on a dimension mismatch. *)

val add_zeros : t -> int -> unit
(** Record [k] all-zero observations in O(1): only the count moves.
    Raises [Invalid_argument] when [k < 0]. *)

val n : t -> int
val sum : t -> int -> float
val mean : t -> int -> float
(** [Tn(f_i)]; 0 when no observations were added. *)

val sample_variance : t -> int -> float
(** [Tn,2(f_i)]; 0 when fewer than two observations. *)

val sample_covariance : t -> int -> int -> float
(** [Tn,1,1(f_i, f_j)]; 0 when fewer than two observations. *)

val covariance_matrix : t -> float array array
(** dim x dim sample covariance matrix. *)

val merge : t -> t -> t
(** Moments of the concatenated streams. *)
