type width =
  | Relative of float
  | Absolute of float

type t = { confidence : float; width : width }

let check_confidence c =
  if not (c > 0.0 && c < 1.0) then
    invalid_arg "Target: confidence must lie in (0,1)"

let relative ?(confidence = 0.95) frac =
  check_confidence confidence;
  if frac <= 0.0 then invalid_arg "Target.relative: fraction must be positive";
  { confidence; width = Relative frac }

let absolute ?(confidence = 0.95) bound =
  check_confidence confidence;
  if bound <= 0.0 then invalid_arg "Target.absolute: bound must be positive";
  { confidence; width = Absolute bound }

let reached t ~estimate ~half_width =
  Float.is_finite estimate
  && Float.is_finite half_width
  &&
  match t.width with
  | Relative frac -> half_width <= frac *. Float.abs estimate && estimate <> 0.0
  | Absolute bound -> half_width <= bound
