type 'a t = { mutable data : 'a array; mutable len : int }

let create ?(capacity = 16) () =
  ignore (max capacity 1);
  (* Storage is allocated lazily on first push; we cannot pre-size a
     polymorphic array without a witness element. *)
  { data = [||]; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- x

let grow t x =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let data = Array.make new_cap x in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    Some t.data.(t.len)
  end

let clear t =
  t.data <- [||];
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len

let map f t =
  let out = { data = [||]; len = 0 } in
  iter (fun x -> push out (f x)) t;
  out

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let of_array a = { data = Array.copy a; len = Array.length a }
let to_list t = Array.to_list (to_array t)

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.len
