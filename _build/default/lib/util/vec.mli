(** Growable arrays.

    OCaml 5.1's standard library has no [Dynarray]; tables and index builders
    need amortised O(1) append with O(1) random access, so we provide one. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
(** O(1); raises [Invalid_argument] when out of bounds. *)

val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
(** Removes and returns the last element. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val map : ('a -> 'b) -> 'a t -> 'b t
val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t
val to_list : 'a t -> 'a list
val sort : ('a -> 'a -> int) -> 'a t -> unit
(** Sorts the populated prefix in place. *)
