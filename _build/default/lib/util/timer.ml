let now () = Unix.gettimeofday ()

type kind = Wall | Virtual | Hybrid

type t = { kind : kind; mutable origin : float; mutable vtime : float }

let wall () = { kind = Wall; origin = now (); vtime = 0.0 }
let virtual_ () = { kind = Virtual; origin = 0.0; vtime = 0.0 }
let hybrid () = { kind = Hybrid; origin = now (); vtime = 0.0 }

let elapsed t =
  match t.kind with
  | Wall -> now () -. t.origin
  | Virtual -> t.vtime
  | Hybrid -> now () -. t.origin +. t.vtime

let advance t dt =
  match t.kind with
  | Wall -> invalid_arg "Timer.advance: cannot advance a wall clock"
  | Virtual | Hybrid ->
    if dt < 0.0 then invalid_arg "Timer.advance: negative amount";
    t.vtime <- t.vtime +. dt

let reset t =
  match t.kind with
  | Wall | Hybrid ->
    t.origin <- now ();
    t.vtime <- 0.0
  | Virtual -> t.vtime <- 0.0

let is_virtual t = t.kind = Virtual || t.kind = Hybrid

let time_it f =
  let t0 = now () in
  let result = f () in
  (result, now () -. t0)
