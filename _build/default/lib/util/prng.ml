type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand the seed into the four xoshiro words, as
   recommended by the xoshiro authors. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

(* 62 uniform random bits as a non-negative OCaml int. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  if bound land (bound - 1) = 0 then bits62 t land (bound - 1)
  else begin
    (* Rejection sampling over the largest multiple of [bound] below 2^62. *)
    let max62 = (1 lsl 62) - 1 in
    let limit = max62 - (((max62 mod bound) + 1) mod bound) in
    let rec loop () =
      let r = bits62 t in
      if r <= limit then r mod bound else loop ()
    in
    loop ()
  end

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Prng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits scaled into [0, 1). *)
  let mantissa = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (float_of_int mantissa *. 0x1p-53)

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let exponential t rate =
  if rate <= 0. then invalid_arg "Prng.exponential: rate must be positive";
  let u = 1.0 -. float t 1.0 in
  -.log u /. rate

let gaussian t =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))
