(** Deterministic pseudo-random number generation.

    The whole repository routes randomness through this module so that every
    experiment is reproducible from a single integer seed.  The generator is
    xoshiro256** seeded via splitmix64, which is both fast and of high
    statistical quality — important here because wander join's unbiasedness
    argument assumes the per-step choices are (close to) independent
    uniforms. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator deterministically from [seed]. *)

val copy : t -> t
(** Independent copy with identical state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams from
    [split] are statistically independent of the parent's subsequent
    output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound); requires [bound > 0].
    Uses rejection sampling, so there is no modulo bias. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform on the inclusive range [lo, hi]; requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate). *)

val gaussian : t -> float
(** Standard normal via Box–Muller. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
