(** Wall-clock and virtual clocks.

    Online aggregation is a time-budgeted computation: the driver loops
    "perform a walk, update the estimate" until the clock expires.  Real
    experiments use the monotonic wall clock; the limited-memory simulation
    (Fig. 13) instead advances a {e virtual} clock by simulated I/O costs so
    the same driver code runs against modelled hardware. *)

type t
(** A clock.  Wall clocks are read-only views of the process monotonic time;
    virtual clocks are advanced explicitly. *)

val wall : unit -> t
(** Clock backed by the OS monotonic counter, starting at 0 now. *)

val virtual_ : unit -> t
(** Clock starting at 0 that advances only through {!advance}. *)

val hybrid : unit -> t
(** Clock that advances with wall time AND through {!advance}: elapsed =
    real CPU time + simulated I/O charges.  This is what the limited-memory
    experiments use, so that algorithmic (CPU) cost is not lost when I/O is
    simulated. *)

val elapsed : t -> float
(** Seconds since the clock was created (or since the last {!reset}). *)

val advance : t -> float -> unit
(** Add seconds to a virtual clock.  Raises [Invalid_argument] on a wall
    clock or on a negative amount. *)

val reset : t -> unit
(** Restart the clock at 0. *)

val is_virtual : t -> bool

val time_it : (unit -> 'a) -> 'a * float
(** [time_it f] runs [f] and also returns its wall-clock duration in
    seconds. *)
