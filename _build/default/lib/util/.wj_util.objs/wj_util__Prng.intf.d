lib/util/prng.mli:
