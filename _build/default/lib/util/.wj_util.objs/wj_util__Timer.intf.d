lib/util/timer.mli:
