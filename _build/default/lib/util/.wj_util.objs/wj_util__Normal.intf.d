lib/util/normal.mli:
