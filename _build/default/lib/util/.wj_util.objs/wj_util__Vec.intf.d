lib/util/vec.mli:
