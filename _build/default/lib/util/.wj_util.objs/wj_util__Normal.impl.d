lib/util/normal.ml: Array Float
