(** The standard normal distribution.

    Confidence intervals in online aggregation are large-sample normal
    intervals: the half-width is [z_alpha * sigma / sqrt n] where [z_alpha]
    is the (alpha+1)/2 quantile of N(0,1) (Appendix A, Eq. 5). *)

val pdf : float -> float
(** Density of N(0,1). *)

val cdf : float -> float
(** Distribution function of N(0,1), accurate to ~1e-7 (Hart/Cody-style
    rational approximation of erfc). *)

val quantile : float -> float
(** [quantile p] is the inverse CDF for [p] in (0,1) (Acklam's algorithm
    refined with one Halley step; relative error below 1e-9).
    Raises [Invalid_argument] outside (0,1). *)

val z_of_confidence : float -> float
(** [z_of_confidence alpha] is the (alpha+1)/2 quantile, e.g.
    [z_of_confidence 0.95 = 1.9599...]. Requires [0 < alpha < 1]. *)
