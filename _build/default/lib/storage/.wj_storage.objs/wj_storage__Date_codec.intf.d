lib/storage/date_codec.mli:
