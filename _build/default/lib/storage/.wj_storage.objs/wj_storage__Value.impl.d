lib/storage/value.ml: Float Format Int String
