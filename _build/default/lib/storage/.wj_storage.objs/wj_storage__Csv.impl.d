lib/storage/csv.ml: Array Buffer Fun List Printf Schema String Table Value
