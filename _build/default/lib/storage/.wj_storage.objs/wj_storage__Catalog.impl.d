lib/storage/catalog.ml: Hashtbl List Printf Schema Table
