lib/storage/csv.mli: Schema Table
