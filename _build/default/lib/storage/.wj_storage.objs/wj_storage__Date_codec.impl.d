lib/storage/date_codec.ml: Printf
