lib/storage/table.ml: Array Printf Schema Value Wj_util
