(** Table schemas: ordered, named, typed columns. *)

type column = { name : string; ty : Value.ty }

type t

val make : column list -> t
(** Raises [Invalid_argument] on duplicate column names or an empty list. *)

val arity : t -> int
val columns : t -> column array
val column : t -> int -> column
val find : t -> string -> int option
(** Position of a column by name. *)

val find_exn : t -> string -> int
(** Like {!find}; raises [Not_found]. *)

val ty_of : t -> int -> Value.ty
val pp : Format.formatter -> t -> unit

val check_tuple : t -> Value.t array -> bool
(** True when the tuple matches the schema's arity and per-column types
    (Null is accepted in any column). *)
