(** Runtime values stored in table cells.

    TPC-H columns are integers (keys, dates encoded as day numbers), floats
    (prices, discounts) and strings (names, flags).  Join attributes are
    always integer-typed here: string join keys are dictionary-encoded at
    load time (see {!Schema}). *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Null

type ty = TInt | TFloat | TStr

val type_of : t -> ty option
(** [None] for [Null]. *)

val to_int : t -> int
(** Raises [Invalid_argument] unless the value is [Int]. *)

val to_float : t -> float
(** Numeric coercion: [Int n -> float n], [Float f -> f]; raises otherwise. *)

val to_string_exn : t -> string
(** Raises [Invalid_argument] unless the value is [Str]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order: Null < Int/Float (numeric order, cross-type compared
    numerically) < Str (lexicographic). *)

val pp : Format.formatter -> t -> unit
val to_display : t -> string
