let epoch_year = 1992

let is_leap y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap y then 29 else 28
  | _ -> invalid_arg "Dates: month out of range"

let days_in_year y = if is_leap y then 366 else 365

let min_day = 0

let max_day =
  (* 1992..1998 inclusive, minus one to index the last day. *)
  let rec total y acc = if y > 1998 then acc else total (y + 1) (acc + days_in_year y) in
  total 1992 0 - 1

let of_ymd y m d =
  if y < 1992 || y > 1998 then invalid_arg "Dates.of_ymd: year out of range";
  if m < 1 || m > 12 then invalid_arg "Dates.of_ymd: month out of range";
  if d < 1 || d > days_in_month y m then invalid_arg "Dates.of_ymd: day out of range";
  let years = ref 0 in
  for yy = 1992 to y - 1 do
    years := !years + days_in_year yy
  done;
  let months = ref 0 in
  for mm = 1 to m - 1 do
    months := !months + days_in_month y mm
  done;
  !years + !months + d - 1

let to_ymd day =
  if day < min_day || day > max_day then invalid_arg "Dates.to_ymd: out of range";
  let y = ref 1992 and rest = ref day in
  while !rest >= days_in_year !y do
    rest := !rest - days_in_year !y;
    incr y
  done;
  let m = ref 1 in
  while !rest >= days_in_month !y !m do
    rest := !rest - days_in_month !y !m;
    incr m
  done;
  (!y, !m, !rest + 1)

let to_string day =
  let y, m, d = to_ymd day in
  Printf.sprintf "%04d-%02d-%02d" y m d
