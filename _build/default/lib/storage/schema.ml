type column = { name : string; ty : Value.ty }

type t = { cols : column array; by_name : (string, int) Hashtbl.t }

let make cols =
  if cols = [] then invalid_arg "Schema.make: empty column list";
  let arr = Array.of_list cols in
  let by_name = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem by_name c.name then
        invalid_arg ("Schema.make: duplicate column " ^ c.name);
      Hashtbl.add by_name c.name i)
    arr;
  { cols = arr; by_name }

let arity t = Array.length t.cols
let columns t = Array.copy t.cols
let column t i = t.cols.(i)
let find t name = Hashtbl.find_opt t.by_name name

let find_exn t name =
  match find t name with Some i -> i | None -> raise Not_found

let ty_of t i = t.cols.(i).ty

let pp fmt t =
  Format.fprintf fmt "(%s)"
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun c ->
               c.name ^ ":"
               ^ match c.ty with Value.TInt -> "int" | TFloat -> "float" | TStr -> "str")
             t.cols)))

let check_tuple t tup =
  Array.length tup = arity t
  && Array.for_all2
       (fun col v ->
         match Value.type_of v with None -> true | Some ty -> ty = col.ty)
       t.cols tup
