(** Row-oriented in-memory tables.

    Rows are dense arrays of {!Value.t}, addressed by row id (their insertion
    position).  Random walks address tuples exclusively through row ids, so
    the id space must stay dense — there is no delete; analytical workloads
    in the paper are read-only after load (§3.6). *)

type t

val create : ?capacity:int -> name:string -> schema:Schema.t -> unit -> t
val name : t -> string
val schema : t -> Schema.t
val length : t -> int

val insert : t -> Value.t array -> int
(** Appends a row (which must match the schema) and returns its row id.
    The array is stored without copying; callers must not mutate it. *)

val row : t -> int -> Value.t array
(** The stored row; callers must not mutate it. *)

val cell : t -> int -> int -> Value.t
(** [cell t row col]. *)

val int_cell : t -> int -> int -> int
(** Fast path used by indexes and walks; raises if the cell is not [Int]. *)

val float_cell : t -> int -> int -> float
(** Numeric coercion of the cell. *)

val iteri : (int -> Value.t array -> unit) -> t -> unit
val fold : ('acc -> Value.t array -> 'acc) -> 'acc -> t -> 'acc
val column_index : t -> string -> int
(** Raises [Not_found] for unknown columns. *)
