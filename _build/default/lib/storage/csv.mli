(** CSV / delimiter-separated import and export for tables.

    Covers both ordinary CSV (quoted fields, escaped quotes) and the
    pipe-separated [.tbl] format produced by TPC-H's dbgen (a trailing
    delimiter and no quoting).  Values are parsed according to the target
    schema: [TInt] and [TFloat] columns through the numeric parsers,
    [TStr] verbatim; empty fields load as [Null]. *)

exception Csv_error of string * int  (** message, 1-based line number *)

val split_line : ?separator:char -> string -> string list
(** Split one record.  Fields may be double-quoted; [""] inside a quoted
    field is an escaped quote.  Raises {!Csv_error} (line 0) on an
    unterminated quote. *)

val render_line : ?separator:char -> string list -> string
(** Inverse of {!split_line}: quotes fields containing the separator,
    quotes or newlines. *)

val load_rows :
  ?separator:char ->
  ?trailing_separator:bool ->
  schema:Schema.t ->
  table:Table.t ->
  string ->
  int
(** [load_rows ~schema ~table path] parses every line of [path] into
    [table] (which must have schema [schema]) and returns the number of
    rows inserted.  [trailing_separator] accepts dbgen-style records that
    end with the separator.  Raises {!Csv_error} on arity or parse
    failures, [Sys_error] on I/O failures. *)

val save_rows : ?separator:char -> table:Table.t -> string -> unit
(** Write every row of [table] to [path], one record per line. *)
