(** Day-offset date codec (TPC-H calendar).

    Dates are stored as integer day offsets from 1992-01-01, which makes
    them indexable by the ordered index and usable in band joins. *)

val epoch_year : int
(** 1992. *)

val of_ymd : int -> int -> int -> int
(** [of_ymd y m d]: day offset of the given Gregorian date.
    Raises [Invalid_argument] outside 1992-01-01 .. 1998-12-31. *)

val to_ymd : int -> int * int * int
val to_string : int -> string
(** ISO format, e.g. "1995-03-15". *)

val min_day : int
(** 0, i.e. 1992-01-01. *)

val max_day : int
(** 1998-12-31. *)
