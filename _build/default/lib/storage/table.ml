type t = {
  name : string;
  schema : Schema.t;
  rows : Value.t array Wj_util.Vec.t;
}

let create ?(capacity = 1024) ~name ~schema () =
  { name; schema; rows = Wj_util.Vec.create ~capacity () }

let name t = t.name
let schema t = t.schema
let length t = Wj_util.Vec.length t.rows

let insert t row =
  if not (Schema.check_tuple t.schema row) then
    invalid_arg
      (Printf.sprintf "Table.insert(%s): tuple does not match schema" t.name);
  Wj_util.Vec.push t.rows row;
  Wj_util.Vec.length t.rows - 1

let row t i = Wj_util.Vec.get t.rows i
let cell t i col = (Wj_util.Vec.get t.rows i).(col)
let int_cell t i col = Value.to_int (cell t i col)
let float_cell t i col = Value.to_float (cell t i col)
let iteri f t = Wj_util.Vec.iteri f t.rows
let fold f acc t = Wj_util.Vec.fold_left f acc t.rows
let column_index t name = Schema.find_exn t.schema name
