type t =
  | Int of int
  | Float of float
  | Str of string
  | Null

type ty = TInt | TFloat | TStr

let type_of = function
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Str _ -> Some TStr
  | Null -> None

let to_int = function
  | Int n -> n
  | Float _ | Str _ | Null -> invalid_arg "Value.to_int: not an Int"

let to_float = function
  | Int n -> float_of_int n
  | Float f -> f
  | Str _ | Null -> invalid_arg "Value.to_float: not numeric"

let to_string_exn = function
  | Str s -> s
  | Int _ | Float _ | Null -> invalid_arg "Value.to_string_exn: not a Str"

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Int x, Float y | Float y, Int x -> Float.equal (float_of_int x) y
  | Str x, Str y -> String.equal x y
  | Null, Null -> true
  | (Int _ | Float _ | Str _ | Null), _ -> false

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | (Int _ | Float _), Str _ -> -1
  | Str _, (Int _ | Float _) -> 1
  | Str x, Str y -> String.compare x y

let pp fmt = function
  | Int n -> Format.fprintf fmt "%d" n
  | Float f -> Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "%S" s
  | Null -> Format.fprintf fmt "NULL"

let to_display v = Format.asprintf "%a" pp v
