lib/exec/complete.mli: Exact Wj_core Wj_stats
