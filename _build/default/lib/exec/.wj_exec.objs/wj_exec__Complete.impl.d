lib/exec/complete.ml: Atomic Domain Exact Wj_core Wj_util
