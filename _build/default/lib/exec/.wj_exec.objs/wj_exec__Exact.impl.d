lib/exec/exact.ml: Array Float Hashtbl List Wj_core Wj_index Wj_stats Wj_storage
