lib/exec/exact.mli: Wj_core Wj_storage
