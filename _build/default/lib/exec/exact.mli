(** Exact query execution: the ground truth and the "full join" baseline.

    An index-nested-loop join that follows a walk plan but enumerates every
    index neighbour instead of sampling one.  It produces the exact
    aggregate (used to measure actual error in every experiment) and stands
    in for "PostgreSQL full join" / "System X" wall-clock baselines. *)

type result = {
  value : float;  (** exact aggregate *)
  join_size : int;  (** number of qualifying join results *)
  rows_visited : int;  (** tuples touched, a machine-independent cost *)
}

val aggregate :
  ?plan:Wj_core.Walk_plan.t ->
  ?tracer:(Wj_core.Walker.event -> unit) ->
  Wj_core.Query.t ->
  Wj_core.Registry.t ->
  result
(** Raises [Invalid_argument] when the query admits no walk plan (exact
    execution needs the same index directions). *)

val group_aggregate :
  ?plan:Wj_core.Walk_plan.t ->
  Wj_core.Query.t ->
  Wj_core.Registry.t ->
  (Wj_storage.Value.t * result) list
(** Per-group exact results, sorted by group key.
    Raises [Invalid_argument] without a GROUP BY clause. *)

val join_size : Wj_core.Query.t -> Wj_core.Registry.t -> int
(** Exact number of join results under the query's predicates. *)
