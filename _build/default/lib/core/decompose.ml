type component = { root : int; members : int list }

(* Tarjan's SCC.  Components are emitted sinks-first: every directed edge of
   the condensation goes from a later list element to an earlier one. *)
let scc ~succ ~n =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (succ v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  List.rev !components

(* All subsets of [items] of the given size. *)
let rec subsets_of_size items size =
  match (items, size) with
  | _, 0 -> [ [] ]
  | [], _ -> []
  | x :: rest, _ ->
    List.map (fun s -> x :: s) (subsets_of_size rest (size - 1))
    @ subsets_of_size rest size

let decompose graph =
  let n = Join_graph.k graph in
  let reach = Array.init n (fun v -> Join_graph.reachable_set graph v) in
  let subset_of a b = Array.for_all2 (fun x y -> (not x) || y) a b in
  (* Step 1 — dominance pruning: drop T(v) contained in another T(v');
     among equal sets keep the smallest vertex id. *)
  let dominated v =
    let beats u =
      u <> v
      && subset_of reach.(v) reach.(u)
      && ((not (subset_of reach.(u) reach.(v))) || u < v)
    in
    List.exists beats (List.init n Fun.id)
  in
  let candidates = List.filter (fun v -> not (dominated v)) (List.init n Fun.id) in
  (* Step 2 — exhaustive minimum cover over the surviving T(v). *)
  let covers cset =
    let covered = Array.make n false in
    List.iter
      (fun v -> Array.iteri (fun u r -> if r then covered.(u) <- true) reach.(v))
      cset;
    Array.for_all Fun.id covered
  in
  let rec find_cover size =
    if size > List.length candidates then
      invalid_arg "Decompose.decompose: graph cannot be covered";
    match List.find_opt covers (subsets_of_size candidates size) with
    | Some c -> c
    | None -> find_cover (size + 1)
  in
  let cover = find_cover 1 in
  (* Step 3 — turn the cover into a partition. *)
  let covering u = List.filter (fun v -> reach.(v).(u)) cover in
  let assignment = Array.make n (-1) in
  List.init n Fun.id
  |> List.iter (fun u ->
         match covering u with [ v ] -> assignment.(u) <- v | _ -> ());
  let multiply = List.filter (fun u -> List.length (covering u) > 1) (List.init n Fun.id) in
  if multiply <> [] then begin
    let in_m = Array.make n false in
    List.iter (fun u -> in_m.(u) <- true) multiply;
    let succ_m v =
      if not in_m.(v) then []
      else List.filter (fun w -> in_m.(w)) (Join_graph.directed_succ graph v)
    in
    let pred_m u = List.filter (fun v -> List.mem u (succ_m v)) multiply in
    (* Topological order of the condensation (sources first); inside an SCC
       the order is arbitrary. *)
    let order =
      scc ~succ:succ_m ~n
      |> List.filter (fun comp -> List.for_all (fun v -> in_m.(v)) comp)
      |> List.rev |> List.concat
    in
    List.iter
      (fun u ->
        let from_predecessor =
          List.find_map
            (fun p -> if assignment.(p) >= 0 && in_m.(p) then Some assignment.(p) else None)
            (pred_m u)
        in
        assignment.(u) <-
          (match from_predecessor with
          | Some v -> v
          | None -> List.hd (covering u)))
      order
  end;
  cover
  |> List.map (fun root ->
         let members =
           List.filter (fun u -> assignment.(u) = root) (List.init n Fun.id)
         in
         { root; members })
  |> List.filter (fun c -> c.members <> [])
  |> List.sort (fun a b -> compare a.root b.root)
