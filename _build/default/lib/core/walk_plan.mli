(** Walk plans: the physical plans of wander join (§4.1).

    A plan fixes the walk order and, for every table entered, which earlier
    table ("parent") and join condition the step walks through.  Join
    conditions that link the new table to other already-bound tables are
    non-tree edges: they are not walked but verified (§3.3).

    For a k-table query the same order can admit several parent choices, so
    plans are enumerated as (order, parent assignment) pairs, exactly the
    backtracking enumeration the paper describes. *)

type step = {
  into : int;  (** table position being entered *)
  parent : int;  (** earlier position the step jumps back to *)
  cond : Query.join_cond;
      (** oriented so that [parent] is the left side and [into] the right *)
  index : Wj_index.Index.t;  (** index on [into]'s side of the condition *)
}

type t = {
  order : int array;  (** order.(0) is the start table *)
  steps : step array;  (** steps.(i) enters order.(i+1) *)
  nontree : Query.join_cond list;
}

val enumerate : ?max_plans:int -> Query.t -> Registry.t -> t list
(** All walk plans, capped at [max_plans] (default 256).  Empty when the
    directed graph admits no valid walk order — callers then fall back to
    {!Decompose}. *)

val enumerate_subset :
  ?max_plans:int -> Query.t -> Registry.t -> members:int list -> t list
(** Walk plans confined to a subset of table positions (a decomposition
    component): orders cover exactly the members; join conditions leaving
    the subset are ignored (they are checked across components by
    {!Hybrid}). *)

val of_order : Query.t -> Registry.t -> int array -> t option
(** The plan following the given table order, choosing for each step the
    first viable parent edge; [None] if the order is invalid.  This mirrors
    "the plan constructed from the input query" used as the PostgreSQL
    baseline in Table 2. *)

val describe : Query.t -> t -> string
(** e.g. ["customer -> orders -> lineitem (non-tree: ...)"] *)
