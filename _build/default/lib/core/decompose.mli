(** Directed-spanning-tree decomposition (§4.1, Appendix B).

    When the index-directed query graph has no vertex that reaches every
    other (no directed spanning tree), wander join cannot walk the whole
    query.  The graph is then decomposed into the fewest components, each
    admitting a directed spanning tree; wander join runs inside each
    component and ripple join combines components (see {!Hybrid}).

    Steps: reachable sets T(v); dominance pruning; exhaustive minimum set
    cover (the problem is NP-hard, but k <= 8 in TPC-H); conversion of the
    cover into a partition by assigning multiply-covered vertices along a
    topological order of the strongly-connected components of the induced
    subgraph — Appendix B proves this keeps every part connected. *)

type component = {
  root : int;  (** vertex whose reachability tree covers the members *)
  members : int list;  (** sorted; includes the root *)
}

val decompose : Join_graph.t -> component list
(** Minimum directed-spanning-tree decomposition.  Returns a single
    component when the graph already has a directed spanning tree.
    Components are returned in ascending root order. *)

val scc : succ:(int -> int list) -> n:int -> int list list
(** Tarjan's strongly-connected components in reverse topological order
    (callees before callers); exposed for tests. *)
