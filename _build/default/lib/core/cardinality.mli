(** Join-cardinality estimation for query optimization (§7 of the paper).

    "Because wander join can estimate COUNT very quickly, we can run wander
    join on any sub-join and estimate the intermediate join size.  This in
    turn provides important statistics to a traditional cost-based query
    optimizer."

    [subquery] restricts a query to a connected subset of its tables;
    [estimate_size] wander-joins its COUNT; [suggest_order] greedily builds
    a full-join order that keeps estimated intermediate results small, the
    classic Selinger-style use of such statistics. *)

type estimate = {
  members : int list;  (** table positions of the sub-join, sorted *)
  size : float;  (** estimated number of sub-join results *)
  half_width : float;
  walks : int;
}

val subquery : Query.t -> members:int list -> Query.t
(** COUNT query over the induced sub-join (joins with both endpoints in
    [members]; predicates on member tables kept).  Raises
    [Invalid_argument] if the induced join graph is not connected or the
    subset is empty. *)

val estimate_size :
  ?seed:int ->
  ?max_walks:int ->
  ?max_time:float ->
  Query.t ->
  Registry.t ->
  members:int list ->
  estimate
(** Wander-join COUNT estimate of the sub-join size (default budget: 20 000
    walks or 0.2 s, whichever first). *)

val suggest_order :
  ?seed:int ->
  ?budget_walks:int ->
  Query.t ->
  Registry.t ->
  int array * estimate list
(** A full-join order built greedily: start from the table with the fewest
    qualifying rows, then repeatedly attach the adjacent table minimising
    the estimated size of the grown sub-join.  Returns the order and the
    intermediate estimates that justified it.  All estimates share
    [budget_walks] (default 50 000) across the sub-joins probed. *)
