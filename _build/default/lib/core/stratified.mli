(** Stratified group-by sampling (§3.5 / §7 of the paper).

    Plain group-by wander join hits popular groups often and rare groups
    almost never, so small groups converge slowly.  When the GROUP BY
    attribute lives on a single table and carries an ordered index, the
    paper points out that walks can {e start} from that table — and then
    each group is its own sampling stratum: walks for group g start
    uniformly inside g's index range (Olken), so every group receives
    exactly the walks allocated to it.

    Per-group estimators are independent ordinary wander-join estimators of
    the group's sub-join (the walk carries the group membership as a start
    predicate), so all Appendix-A machinery applies unchanged.

    Three allocation policies decide which group the next walk serves:
    - [Equal]: round-robin (maximal boost for small groups);
    - [Proportional]: by group cardinality (mimics unstratified sampling);
    - [Adaptive]: the group with the widest relative confidence interval
      (a Neyman-style allocation driven by observed variance). *)

type allocation = Equal | Proportional | Adaptive

type group_state = {
  key : Wj_storage.Value.t;
  group_rows : int;  (** rows of the group-by table in this group *)
  report : Online.report;
}

type outcome = {
  strata : group_state list;  (** sorted by key *)
  total_walks : int;
  elapsed : float;
}

val run :
  ?seed:int ->
  ?confidence:float ->
  ?allocation:allocation ->
  ?max_time:float ->
  ?max_walks:int ->
  ?clock:Wj_util.Timer.t ->
  Query.t ->
  Registry.t ->
  outcome
(** Requires the query to have GROUP BY on an integer column with an
    ordered index in the registry, and at least one walk plan starting at
    the group-by table; raises [Invalid_argument] otherwise. *)
