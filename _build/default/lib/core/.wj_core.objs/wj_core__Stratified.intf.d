lib/core/stratified.mli: Online Query Registry Wj_storage Wj_util
