lib/core/online.ml: Hashtbl List Optimizer Option Query Walk_plan Walker Wj_stats Wj_storage Wj_util
