lib/core/parallel.ml: Array Domain List Online Optimizer Query Walk_plan Walker Wj_stats Wj_util
