lib/core/online.mli: Optimizer Query Registry Walk_plan Walker Wj_stats Wj_storage Wj_util
