lib/core/parallel.mli: Online Query Registry Wj_stats
