lib/core/decompose.ml: Array Fun Join_graph List
