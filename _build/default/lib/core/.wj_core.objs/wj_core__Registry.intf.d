lib/core/registry.mli: Query Wj_index
