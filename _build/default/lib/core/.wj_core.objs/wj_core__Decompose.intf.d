lib/core/decompose.mli: Join_graph
