lib/core/query.ml: Array Fun List Printf String Wj_stats Wj_storage
