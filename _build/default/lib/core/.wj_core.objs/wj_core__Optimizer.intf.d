lib/core/optimizer.mli: Query Registry Walk_plan Walker Wj_stats Wj_util
