lib/core/walk_plan.ml: Array Join_graph List Printf Query Registry Seq String Wj_index
