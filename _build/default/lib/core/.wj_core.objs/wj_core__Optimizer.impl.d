lib/core/optimizer.ml: List Option Query Walk_plan Walker Wj_stats
