lib/core/join_graph.ml: Array Fun Hashtbl List Option Query Registry
