lib/core/join_graph.mli: Query Registry
