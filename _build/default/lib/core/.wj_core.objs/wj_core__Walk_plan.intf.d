lib/core/walk_plan.mli: Query Registry Wj_index
