lib/core/cardinality.ml: Array Float Fun Hashtbl List Online Optimizer Query Registry Wj_stats Wj_storage
