lib/core/hybrid.ml: Array Decompose Float Join_graph List Query Walk_plan Walker Wj_stats Wj_util
