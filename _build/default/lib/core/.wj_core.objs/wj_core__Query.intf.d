lib/core/query.mli: Wj_stats Wj_storage
