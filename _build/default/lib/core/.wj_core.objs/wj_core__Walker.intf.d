lib/core/walker.mli: Query Registry Walk_plan Wj_util
