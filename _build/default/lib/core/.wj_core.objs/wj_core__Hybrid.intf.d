lib/core/hybrid.mli: Decompose Query Registry Wj_util
