lib/core/cardinality.mli: Query Registry
