lib/core/walker.ml: Array List Option Query Registry Walk_plan Wj_index Wj_storage Wj_util
