lib/core/registry.ml: Array Hashtbl List Option Query Wj_index Wj_storage
