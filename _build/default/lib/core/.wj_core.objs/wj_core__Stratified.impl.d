lib/core/stratified.ml: Array Float List Online Optimizer Query Registry Walk_plan Walker Wj_index Wj_stats Wj_storage Wj_util
