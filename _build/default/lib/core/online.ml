module Estimator = Wj_stats.Estimator
module Target = Wj_stats.Target
module Timer = Wj_util.Timer
module Prng = Wj_util.Prng
module Value = Wj_storage.Value

type report = {
  elapsed : float;
  walks : int;
  successes : int;
  estimate : float;
  half_width : float;
}

type stop_reason = Target_reached | Time_up | Walk_budget_exhausted | Cancelled

type outcome = {
  final : report;
  estimator : Estimator.t;
  plan : Walk_plan.t;
  plan_description : string;
  optimizer_time : float;
  optimizer_walks : int;
  stopped_because : stop_reason;
  history : report list;
}

type plan_choice =
  | Optimize of Optimizer.config
  | Fixed of Walk_plan.t
  | First_enumerated

let value_for_agg q prepared path =
  match q.Query.agg with
  | Estimator.Count -> 1.0
  | Estimator.Sum | Estimator.Avg | Estimator.Variance | Estimator.Stdev ->
    Walker.value_of prepared path

let make_report ~confidence ~elapsed est =
  {
    elapsed;
    walks = Estimator.n est;
    successes = Estimator.successes est;
    estimate = Estimator.estimate est;
    half_width = Estimator.half_width est ~confidence;
  }

let pick_plan ~plan_choice ~eager_checks ~tracer q registry prng clock =
  match plan_choice with
  | Fixed plan ->
    ( Walker.prepare ~eager_checks ?tracer q registry plan,
      plan,
      Estimator.create q.Query.agg,
      0.0,
      0 )
  | First_enumerated -> (
    match Walk_plan.enumerate ~max_plans:1 q registry with
    | [] -> invalid_arg "Online.run: query admits no walk plan"
    | plan :: _ ->
      ( Walker.prepare ~eager_checks ?tracer q registry plan,
        plan,
        Estimator.create q.Query.agg,
        0.0,
        0 ))
  | Optimize config ->
    let t0 = Timer.elapsed clock in
    let r = Optimizer.choose ~config ~eager_checks ?tracer q registry prng in
    let dt = Timer.elapsed clock -. t0 in
    (r.best, r.best_plan, r.trial_estimator, dt, r.total_trial_walks)

let run ?(seed = 42) ?(confidence = 0.95) ?target ?(max_time = 10.0) ?max_walks
    ?report_every ?on_report ?clock ?(plan_choice = Optimize Optimizer.default_config)
    ?(eager_checks = true) ?tracer ?should_stop q registry =
  let clock = match clock with Some c -> c | None -> Timer.wall () in
  let prng = Prng.create (seed lxor 0x4F4E4C) in  (* "ONL" *)
  let prepared, plan, est, optimizer_time, optimizer_walks =
    pick_plan ~plan_choice ~eager_checks ~tracer q registry prng clock
  in
  let history = ref [] in
  let next_report = ref (match report_every with Some r -> r | None -> infinity) in
  let emit_report () =
    match on_report with
    | None -> ()
    | Some f ->
      let r = make_report ~confidence ~elapsed:(Timer.elapsed clock) est in
      history := r :: !history;
      f r
  in
  let target_reached () =
    match target with
    | None -> false
    | Some tgt ->
      (* Checking the CI after every single walk is wasteful; poll. *)
      Estimator.n est >= 16
      && Estimator.n est land 15 = 0
      && Target.reached tgt ~estimate:(Estimator.estimate est)
           ~half_width:(Estimator.half_width est ~confidence)
  in
  let stop = ref None in
  let cancelled () =
    match should_stop with
    | None -> false
    | Some f -> Estimator.n est land 63 = 0 && f ()
  in
  while !stop = None do
    if target_reached () then stop := Some Target_reached
    else if cancelled () then stop := Some Cancelled
    else if Timer.elapsed clock >= max_time then stop := Some Time_up
    else if (match max_walks with Some m -> Estimator.n est >= m | None -> false)
    then stop := Some Walk_budget_exhausted
    else begin
      (match Walker.walk prepared prng with
      | Walker.Success { path; inv_p } ->
        Estimator.add est ~u:inv_p ~v:(value_for_agg q prepared path)
      | Walker.Failure _ -> Estimator.add_failure est);
      if Timer.elapsed clock >= !next_report then begin
        emit_report ();
        next_report :=
          !next_report +. (match report_every with Some r -> r | None -> infinity)
      end
    end
  done;
  let final = make_report ~confidence ~elapsed:(Timer.elapsed clock) est in
  {
    final;
    estimator = est;
    plan;
    plan_description = Walk_plan.describe q plan;
    optimizer_time;
    optimizer_walks;
    stopped_because = Option.get !stop;
    history = List.rev !history;
  }

(* ---- Group-by -------------------------------------------------------- *)

type group_outcome = {
  groups : (Value.t * report) list;
  total_walks : int;
  group_elapsed : float;
}

let run_group_by ?(seed = 42) ?(confidence = 0.95) ?(max_time = 10.0) ?max_walks
    ?report_every ?on_group_report ?clock
    ?(plan_choice = Optimize Optimizer.default_config) q registry =
  if q.Query.group_by = None then
    invalid_arg "Online.run_group_by: query has no GROUP BY";
  let clock = match clock with Some c -> c | None -> Timer.wall () in
  let prng = Prng.create (seed lxor 0x4F4E4C) in  (* "ONL" *)
  let prepared, _plan, _trials, _, _ =
    pick_plan ~plan_choice ~eager_checks:true ~tracer:None q registry prng clock
  in
  (* The optimizer's trial estimator cannot be split by group (it does not
     retain paths), so group estimators start from zero walks here. *)
  let groups : (Value.t, Estimator.t) Hashtbl.t = Hashtbl.create 16 in
  let total = ref 0 in
  let group_est key =
    match Hashtbl.find_opt groups key with
    | Some e -> e
    | None ->
      let e = Estimator.create q.Query.agg in
      (* Walks performed before this group first appeared are misses. *)
      Estimator.add_failures e !total;
      Hashtbl.add groups key e;
      e
  in
  let pad_all () =
    Hashtbl.iter (fun _ e -> Estimator.add_failures e (!total - Estimator.n e)) groups
  in
  let snapshot () =
    pad_all ();
    Hashtbl.fold
      (fun key e acc ->
        (key, make_report ~confidence ~elapsed:(Timer.elapsed clock) e) :: acc)
      groups []
    |> List.sort (fun (a, _) (b, _) -> Value.compare a b)
  in
  let next_report = ref (match report_every with Some r -> r | None -> infinity) in
  let stop = ref false in
  while not !stop do
    if Timer.elapsed clock >= max_time then stop := true
    else if (match max_walks with Some m -> !total >= m | None -> false) then
      stop := true
    else begin
      (match Walker.walk prepared prng with
      | Walker.Success { path; inv_p } ->
        let key = Query.group_key q path in
        let e = group_est key in
        (* Catch up on misses since this group's last hit, then record. *)
        Estimator.add_failures e (!total - Estimator.n e);
        Estimator.add e ~u:inv_p ~v:(value_for_agg q prepared path)
      | Walker.Failure _ -> ());
      incr total;
      if Timer.elapsed clock >= !next_report then begin
        (match on_group_report with
        | None -> ()
        | Some f -> f (Timer.elapsed clock) (snapshot ()));
        next_report :=
          !next_report +. (match report_every with Some r -> r | None -> infinity)
      end
    end
  done;
  { groups = snapshot (); total_walks = !total; group_elapsed = Timer.elapsed clock }
