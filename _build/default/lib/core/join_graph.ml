type t = {
  k : int;
  pairs : (int * int, Query.join_cond list) Hashtbl.t; (* key has min first *)
  walk : (int * int, Query.join_cond list) Hashtbl.t; (* (from, into) directed *)
  undirected : int list array;
}

let key a b = if a <= b then (a, b) else (b, a)

let push tbl key cond =
  match Hashtbl.find_opt tbl key with
  | Some conds -> Hashtbl.replace tbl key (conds @ [ cond ])
  | None -> Hashtbl.add tbl key [ cond ]

let of_query q registry =
  let k = Query.k q in
  let pairs = Hashtbl.create 16 in
  let walk = Hashtbl.create 16 in
  let undirected = Array.make k [] in
  List.iter
    (fun (cond : Query.join_cond) ->
      let (lp, _), (rp, rc) = (cond.left, cond.right) in
      let lc = snd cond.left in
      push pairs (key lp rp) cond;
      if not (List.mem rp undirected.(lp)) then undirected.(lp) <- rp :: undirected.(lp);
      if not (List.mem lp undirected.(rp)) then undirected.(rp) <- lp :: undirected.(rp);
      (* Walking lp -> rp requires an index on (rp, rc). *)
      if Registry.can_serve registry ~pos:rp ~column:rc ~op:cond.op then
        push walk (lp, rp) cond;
      (* Walking rp -> lp requires an index on (lp, lc). *)
      if Registry.can_serve registry ~pos:lp ~column:lc ~op:cond.op then
        push walk (rp, lp) cond)
    q.Query.joins;
  { k; pairs; walk; undirected }

let k t = t.k

let conds_between t a b =
  Option.value ~default:[] (Hashtbl.find_opt t.pairs (key a b))

let walkable t ~from ~into =
  Option.value ~default:[] (Hashtbl.find_opt t.walk (from, into))

let directed_succ t v =
  let out = ref [] in
  for u = t.k - 1 downto 0 do
    if u <> v && walkable t ~from:v ~into:u <> [] then out := u :: !out
  done;
  !out

let reachable_set t v =
  let seen = Array.make t.k false in
  let rec dfs x =
    if not seen.(x) then begin
      seen.(x) <- true;
      List.iter dfs (directed_succ t x)
    end
  in
  dfs v;
  seen

let undirected_adj t v = t.undirected.(v)

let is_tree t =
  (* Connected is guaranteed; a connected graph is a tree iff the number of
     distinct adjacent pairs is k - 1. *)
  Hashtbl.length t.pairs = t.k - 1

let roots t =
  let out = ref [] in
  for v = t.k - 1 downto 0 do
    if Array.for_all Fun.id (reachable_set t v) then out := v :: !out
  done;
  !out

let has_directed_spanning_tree t = roots t <> []
