type step = {
  into : int;
  parent : int;
  cond : Query.join_cond;
  index : Wj_index.Index.t;
}

type t = {
  order : int array;
  steps : step array;
  nontree : Query.join_cond list;
}

(* Orients [cond] with [parent] on the left and [into] on the right, and
   fetches the index backing the step. *)
let make_step q registry ~parent ~into cond =
  ignore q;
  let cond = if fst cond.Query.left = parent then cond else Query.flip cond in
  let _, col = cond.Query.right in
  match Registry.find registry ~pos:into ~column:col with
  | Some index -> { into; parent; cond; index }
  | None -> invalid_arg "Walk_plan.make_step: missing index (walkable lied?)"

(* Conditions inside the member set not used as tree steps become non-tree
   edges; conditions leaving the set are the caller's (Hybrid's) business. *)
let nontree_of q ~allowed used =
  List.filter
    (fun (c : Query.join_cond) ->
      allowed.(fst c.left) && allowed.(fst c.right) && not (List.memq c used))
    q.Query.joins

let enumerate_allowed ~max_plans q registry allowed =
  let graph = Join_graph.of_query q registry in
  let k = Query.k q in
  let target = Array.fold_left (fun a b -> if b then a + 1 else a) 0 allowed in
  let plans = ref [] in
  let count = ref 0 in
  let exception Done in
  let rec extend in_set order_rev steps_rev used depth =
    if depth = target then begin
      let order = Array.of_list (List.rev order_rev) in
      let steps = Array.of_list (List.rev steps_rev) in
      plans := { order; steps; nontree = nontree_of q ~allowed used } :: !plans;
      incr count;
      if !count >= max_plans then raise Done
    end
    else
      for into = 0 to k - 1 do
        if allowed.(into) && not in_set.(into) then
          for parent = 0 to k - 1 do
            if in_set.(parent) then
              List.iter
                (fun cond ->
                  let step = make_step q registry ~parent ~into cond in
                  in_set.(into) <- true;
                  extend in_set (into :: order_rev) (step :: steps_rev)
                    (cond :: used) (depth + 1);
                  in_set.(into) <- false)
                (Join_graph.walkable graph ~from:parent ~into)
          done
      done
  in
  (try
     for start = 0 to k - 1 do
       if allowed.(start) then begin
         let in_set = Array.make k false in
         in_set.(start) <- true;
         extend in_set [ start ] [] [] 1
       end
     done
   with Done -> ());
  List.rev !plans

let enumerate ?(max_plans = 256) q registry =
  enumerate_allowed ~max_plans q registry (Array.make (Query.k q) true)

let enumerate_subset ?(max_plans = 256) q registry ~members =
  let allowed = Array.make (Query.k q) false in
  List.iter (fun m -> allowed.(m) <- true) members;
  enumerate_allowed ~max_plans q registry allowed

let of_order q registry order =
  let graph = Join_graph.of_query q registry in
  let k = Query.k q in
  if Array.length order <> k then None
  else begin
    let in_set = Array.make k false in
    in_set.(order.(0)) <- true;
    let rec build i steps used =
      if i = k then
        Some
          {
            order = Array.copy order;
            steps = Array.of_list (List.rev steps);
            nontree = nontree_of q ~allowed:(Array.make k true) used;
          }
      else begin
        let into = order.(i) in
        let candidate =
          Array.to_seq order |> Seq.take i
          |> Seq.filter_map (fun parent ->
                 match Join_graph.walkable graph ~from:parent ~into with
                 | [] -> None
                 | cond :: _ -> Some (parent, cond))
          |> Seq.uncons
        in
        match candidate with
        | None -> None
        | Some ((parent, cond), _) ->
          in_set.(into) <- true;
          build (i + 1)
            (make_step q registry ~parent ~into cond :: steps)
            (cond :: used)
      end
    in
    build 1 [] []
  end

let describe q t =
  let names = q.Query.names in
  let order_str =
    String.concat " -> " (Array.to_list (Array.map (fun i -> names.(i)) t.order))
  in
  let cond_str (c : Query.join_cond) =
    Printf.sprintf "%s~%s" names.(fst c.left) names.(fst c.right)
  in
  if t.nontree = [] then order_str
  else
    Printf.sprintf "%s (non-tree: %s)" order_str
      (String.concat ", " (List.map cond_str t.nontree))
