(** Execution of individual random walks (§3).

    [prepare] compiles a (query, plan) pair into a closure-friendly form:
    predicate lists per position, the start-table sampler (uniform, or
    Olken over an ordered index when a sargable predicate allows it, §3.5),
    and the schedule on which non-tree edges and predicates are checked.

    [walk] then performs one walk: it samples a start tuple, walks/jumps
    through the plan's steps picking a uniform index neighbour each time,
    accumulates the inverse sampling probability (Eq. 3), and fails fast on
    an empty neighbour set, a violated predicate, or a violated non-tree
    edge.  Failed walks are part of the probability space and must be fed
    to the estimator as zeros (§3.1). *)

type event =
  | Row_access of int * int  (** (table position, row id) *)
  | Index_probe of int * int  (** (table position, abstract probe cost) *)

type outcome =
  | Success of { path : int array; inv_p : float }
  | Failure of { depth : int }
      (** [depth]: how many tables were bound before the walk died. *)

type prepared

val prepare :
  ?eager_checks:bool ->
  ?tracer:(event -> unit) ->
  Query.t ->
  Registry.t ->
  Walk_plan.t ->
  prepared
(** [eager_checks] (default true) verifies predicates and non-tree edges at
    the earliest step where their tables are bound; when false, everything
    is checked only once the full path is assembled (the paper's plain
    description — kept for the fail-fast ablation). *)

val start_cardinality : prepared -> int
(** The |R_{λ(1)}| (or Olken-reduced qualifying count) used in the
    Horvitz–Thompson weight. *)

val uses_olken_start : prepared -> bool

val walk : prepared -> Wj_util.Prng.t -> outcome
(** One random walk.  Also drives the tracer, if any. *)

val steps_of_last_walk : prepared -> int
(** Abstract cost (index-entry accesses + tuple fetches) of the most recent
    walk — the per-walk T in the optimizer's Var(X)·E[T] objective. *)

val value_of : prepared -> int array -> float
(** The aggregate expression on a successful path. *)
