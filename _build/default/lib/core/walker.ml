module Index = Wj_index.Index
module Table = Wj_storage.Table
module Value = Wj_storage.Value
module Prng = Wj_util.Prng

type event =
  | Row_access of int * int
  | Index_probe of int * int

type outcome =
  | Success of { path : int array; inv_p : float }
  | Failure of { depth : int }

type start_sampler =
  | Uniform of { table : Table.t }
  | Olken of { index : Index.t; lo : int; hi : int }

type prepared = {
  query : Query.t;
  plan : Walk_plan.t;
  start : start_sampler;
  start_count : int;
  start_preds : Query.predicate list; (* checked after sampling the start *)
  preds_by_pos : Query.predicate list array;
  (* Non-tree edges (and, with lazy checks, nothing else) scheduled by the
     step index after which both endpoints are bound; index 0 = after the
     start, i = after steps.(i-1). *)
  checks_at : Query.join_cond list array;
  eager : bool;
  tracer : (event -> unit) option;
  mutable last_steps : int;
}

(* Integer range implied by a sargable predicate, if any. *)
let sargable_range (p : Query.predicate) =
  match p with
  | Query.Cmp { column; op; value = Value.Int v; _ } -> (
    match op with
    | Query.Ceq -> Some (column, v, v)
    | Query.Cle -> Some (column, min_int, v)
    | Query.Clt -> Some (column, min_int, v - 1)
    | Query.Cge -> Some (column, v, max_int)
    | Query.Cgt -> Some (column, v + 1, max_int)
    | Query.Cne -> None)
  | Query.Between { column; lo = Value.Int lo; hi = Value.Int hi; _ } ->
    Some (column, lo, hi)
  | Query.Cmp _ | Query.Between _ | Query.Member _ -> None

(* Choose the most selective Olken-sampleable predicate on the start table;
   the remaining predicates stay as post-sampling checks. *)
let choose_start q registry pos =
  let table = q.Query.tables.(pos) in
  let preds = Query.predicates_on q pos in
  let candidates =
    List.filter_map
      (fun p ->
        match sargable_range p with
        | None -> None
        | Some (column, lo, hi) -> (
          match Registry.find registry ~pos ~column with
          | Some index when Index.supports_range index ->
            Some (p, index, lo, hi, Index.count_range index ~lo ~hi)
          | Some _ | None -> None))
      preds
  in
  match candidates with
  | [] -> (Uniform { table }, Table.length table, preds)
  | _ ->
    let best =
      List.fold_left
        (fun acc ((_, _, _, _, c) as cand) ->
          match acc with
          | Some (_, _, _, _, c') when c' <= c -> acc
          | _ -> Some cand)
        None candidates
    in
    let p, index, lo, hi, count = Option.get best in
    (Olken { index; lo; hi }, count, List.filter (fun p' -> p' != p) preds)

let prepare ?(eager_checks = true) ?tracer q registry (plan : Walk_plan.t) =
  let kq = Query.k q in
  let rank = Array.make kq 0 in
  Array.iteri (fun i pos -> rank.(pos) <- i) plan.order;
  let preds_by_pos = Array.init kq (fun pos -> Query.predicates_on q pos) in
  let checks_at = Array.make kq [] in
  List.iter
    (fun (c : Query.join_cond) ->
      let at =
        if eager_checks then max rank.(fst c.left) rank.(fst c.right) else kq - 1
      in
      checks_at.(at) <- c :: checks_at.(at))
    plan.nontree;
  let start, start_count, start_preds = choose_start q registry plan.order.(0) in
  {
    query = q;
    plan;
    start;
    start_count;
    start_preds;
    preds_by_pos;
    checks_at;
    eager = eager_checks;
    tracer;
    last_steps = 0;
  }

let start_cardinality t = t.start_count
let uses_olken_start t = match t.start with Olken _ -> true | Uniform _ -> false

let trace t ev = match t.tracer with None -> () | Some f -> f ev

let sample_start t prng =
  match t.start with
  | Uniform { table } ->
    let n = Table.length table in
    if n = 0 then None else Some (Prng.int prng n)
  | Olken { index; lo; hi } ->
    if t.start_count = 0 then None
    else Some (Index.nth_range index ~lo ~hi (Prng.int prng t.start_count))

let walk t prng =
  let q = t.query in
  let kq = Query.k q in
  let plan = t.plan in
  let path = Array.make kq (-1) in
  let steps = ref 0 in
  let ok = ref true in
  let depth = ref 0 in
  let inv_p = ref (float_of_int t.start_count) in
  let start_pos = plan.order.(0) in
  (* Bind and vet the start tuple. *)
  (match sample_start t prng with
  | None -> ok := false
  | Some row ->
    incr steps;
    (match t.start with
    | Uniform _ -> ()
    | Olken { index; _ } -> steps := !steps + Index.probe_cost index);
    trace t (Row_access (start_pos, row));
    path.(start_pos) <- row;
    if List.for_all (fun p -> Query.check_predicate q p row) t.start_preds then begin
      depth := 1;
      if not (List.for_all (fun c -> Query.check_join q c path) t.checks_at.(0)) then
        ok := false
    end
    else ok := false);
  (* Walk the remaining tables (plans over a decomposition component have
     fewer steps than k - 1). *)
  let nsteps = Array.length plan.steps in
  let i = ref 0 in
  while !ok && !i < nsteps do
    let step = plan.steps.(!i) in
    let cond = step.cond in
    let parent_row = path.(step.parent) in
    let _, lcol = cond.left in
    let v = Table.int_cell q.tables.(step.parent) parent_row lcol in
    let lo, hi = Query.join_key_range cond ~from_left:true v in
    let probe = Index.probe_cost step.index in
    trace t (Index_probe (step.into, probe));
    let d =
      match cond.op with
      | Query.Eq -> Index.count_eq step.index v
      | Query.Band _ -> Index.count_range step.index ~lo ~hi
    in
    steps := !steps + probe;
    if d = 0 then ok := false
    else begin
      let pick = Prng.int prng d in
      let row =
        match cond.op with
        | Query.Eq -> Index.nth_eq step.index v pick
        | Query.Band _ -> Index.nth_range step.index ~lo ~hi pick
      in
      steps := !steps + probe + 1;
      trace t (Row_access (step.into, row));
      path.(step.into) <- row;
      if
        List.for_all (fun p -> Query.check_predicate q p row) t.preds_by_pos.(step.into)
      then begin
        inv_p := !inv_p *. float_of_int d;
        depth := !depth + 1;
        if not (List.for_all (fun c -> Query.check_join q c path) t.checks_at.(!i + 1))
        then ok := false
      end
      else ok := false
    end;
    incr i
  done;
  t.last_steps <- !steps;
  if !ok then Success { path; inv_p = !inv_p } else Failure { depth = !depth }

let steps_of_last_walk t = t.last_steps
let value_of t path = Query.eval_expr t.query path
