lib/tpch/queries.ml: Dates Float Generator Wj_core Wj_stats Wj_storage
