lib/tpch/generator.ml: Array Dates Float List Printf String Wj_storage Wj_util
