lib/tpch/dates.ml: Wj_storage
