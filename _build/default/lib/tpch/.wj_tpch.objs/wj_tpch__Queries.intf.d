lib/tpch/queries.mli: Generator Wj_core Wj_stats
