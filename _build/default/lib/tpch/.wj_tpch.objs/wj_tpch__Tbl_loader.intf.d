lib/tpch/tbl_loader.mli: Generator Wj_storage
