lib/tpch/generator.mli: Wj_storage
