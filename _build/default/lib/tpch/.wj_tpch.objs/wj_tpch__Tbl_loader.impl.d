lib/tpch/tbl_loader.ml: Array Dates Filename Fun Generator List Printf String Wj_storage
