(* TPC-H dates are plain Wj_storage day offsets; re-exported here so TPC-H
   code reads naturally. *)
include Wj_storage.Date_codec
