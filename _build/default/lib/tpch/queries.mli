(** The paper's three benchmark queries (Q3, Q7, Q10) as {!Wj_core.Query}
    values, with the predicate knobs the experiments sweep.

    Table positions follow the FROM order below; the join graphs are:

    - Q3  (3 tables): customer — orders — lineitem (chain)
    - Q7  (6 tables): nation1 — supplier — lineitem — orders — customer —
      nation2 (chain through both nation aliases)
    - Q10 (4 tables): nation — customer — orders — lineitem (chain)

    All aggregate SUM(l_extendedprice * (1 - l_discount)) unless [agg]
    overrides it. *)

type spec = Q3 | Q7 | Q10

(** Predicate selection:
    - [Barebone]: no selection predicates (Fig. 8, 9).
    - [Standard]: the TPC-H predicates (Fig. 11-13, Tables 2, 3).
    - [One_date f]: exactly one date predicate keeping about fraction [f]
      of the predicate table's rows (Fig. 10's selectivity sweep).
    - [Scaled f]: all standard predicates, date windows scaled to fraction
      [f] of their full span (Fig. 11's sweep).
    - [Extra ps]: barebone plus caller-supplied predicates. *)
type variant =
  | Barebone
  | Standard
  | One_date of float
  | Scaled of float
  | Extra of Wj_core.Query.predicate list

val build :
  ?variant:variant ->
  ?agg:Wj_stats.Estimator.agg ->
  ?group_by_segment:bool ->
  spec ->
  Generator.dataset ->
  Wj_core.Query.t
(** [group_by_segment] adds GROUP BY c_mktsegment (only Q3 and Q10 have a
    customer table; raises [Invalid_argument] for Q7). *)

val tables_of : spec -> int
(** Number of tables in the join (3, 6, 4). *)

val name_of : spec -> string

val registry :
  ?ordered_predicates:bool -> Wj_core.Query.t -> Wj_core.Registry.t
(** Convenience: {!Wj_core.Registry.build_for_query}. *)
