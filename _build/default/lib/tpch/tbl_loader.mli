(** Loader for official TPC-H dbgen [.tbl] files.

    Reads [region.tbl], [nation.tbl], [supplier.tbl], [customer.tbl],
    [orders.tbl] and [lineitem.tbl] from a directory into the same schemas
    the synthetic {!Generator} produces, so every query, index and
    experiment in this repository runs unchanged on real dbgen output:

    - only the columns the benchmark queries touch are retained;
    - dates parse from [yyyy-mm-dd] into day offsets;
    - categorical columns gain their dictionary-encoded [_id] twins;
    - [o_orderpriority] ("1-URGENT" ... "5-LOW") keeps its numeric prefix.

    dbgen uses 1-based, sometimes sparse keys; they are loaded verbatim —
    join consistency only needs both sides to come from the same run. *)

val load_dir : string -> Generator.dataset
(** Raises [Sys_error] when a file is missing and
    [Wj_storage.Csv.Csv_error] on malformed records.  The [sf] field is
    inferred from the orders cardinality. *)

val load_table :
  string ->
  [ `Region | `Nation | `Supplier | `Customer | `Orders | `Lineitem ] ->
  Wj_storage.Table.t
(** Load a single [.tbl] file as the given table kind. *)
