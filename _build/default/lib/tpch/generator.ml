module Table = Wj_storage.Table
module Schema = Wj_storage.Schema
module Value = Wj_storage.Value
module Catalog = Wj_storage.Catalog
module Prng = Wj_util.Prng

type dataset = {
  region : Table.t;
  nation : Table.t;
  supplier : Table.t;
  customer : Table.t;
  orders : Table.t;
  lineitem : Table.t;
  sf : float;
}

let market_segments =
  [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "HOUSEHOLD"; "MACHINERY" |]

let segment_id s =
  match Array.find_index (String.equal s) market_segments with
  | Some i -> i
  | None -> raise Not_found

let return_flags = [| "A"; "N"; "R" |]

let nations =
  [|
    "ALGERIA"; "ARGENTINA"; "BRAZIL"; "CANADA"; "EGYPT"; "ETHIOPIA"; "FRANCE";
    "GERMANY"; "INDIA"; "INDONESIA"; "IRAN"; "IRAQ"; "JAPAN"; "JORDAN"; "KENYA";
    "MOROCCO"; "MOZAMBIQUE"; "PERU"; "CHINA"; "ROMANIA"; "SAUDI ARABIA";
    "VIETNAM"; "RUSSIA"; "UNITED KINGDOM"; "UNITED STATES";
  |]

let nation_key s =
  match Array.find_index (String.equal s) nations with
  | Some i -> i
  | None -> raise Not_found

let regions = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

let col name ty = { Schema.name; ty }

let region_schema = Schema.make [ col "r_regionkey" TInt; col "r_name" TStr ]

let nation_schema =
  Schema.make [ col "n_nationkey" TInt; col "n_name" TStr; col "n_regionkey" TInt ]

let supplier_schema =
  Schema.make
    [
      col "s_suppkey" TInt;
      col "s_name" TStr;
      col "s_nationkey" TInt;
      col "s_acctbal" TFloat;
    ]

let customer_schema =
  Schema.make
    [
      col "c_custkey" TInt;
      col "c_name" TStr;
      col "c_nationkey" TInt;
      col "c_mktsegment" TStr;
      col "c_mktsegment_id" TInt;
      col "c_acctbal" TFloat;
    ]

let orders_schema =
  Schema.make
    [
      col "o_orderkey" TInt;
      col "o_custkey" TInt;
      col "o_orderstatus" TStr;
      col "o_totalprice" TFloat;
      col "o_orderdate" TInt;
      col "o_orderpriority" TInt;
      col "o_shippriority" TInt;
    ]

let lineitem_schema =
  Schema.make
    [
      col "l_orderkey" TInt;
      col "l_linenumber" TInt;
      col "l_suppkey" TInt;
      col "l_quantity" TFloat;
      col "l_extendedprice" TFloat;
      col "l_discount" TFloat;
      col "l_tax" TFloat;
      col "l_returnflag" TStr;
      col "l_returnflag_id" TInt;
      col "l_shipdate" TInt;
    ]

(* Order dates leave >= 151 days for shipment + receipt. *)
let max_orderdate = Dates.max_day - 151

let generate ?(seed = 7) ~sf () =
  if sf <= 0.0 then invalid_arg "Generator.generate: sf must be positive";
  let prng = Prng.create (seed lxor 0x47454E) in  (* "GEN": salt the stream *)
  let scaled base = max 1 (int_of_float (Float.round (float_of_int base *. sf))) in
  let region = Table.create ~name:"region" ~schema:region_schema () in
  Array.iteri
    (fun i name -> ignore (Table.insert region [| Int i; Str name |]))
    regions;
  let nation = Table.create ~name:"nation" ~schema:nation_schema () in
  Array.iteri
    (fun i name ->
      ignore (Table.insert nation [| Int i; Str name; Int (i mod Array.length regions) |]))
    nations;
  let n_supplier = scaled 10_000 in
  let supplier = Table.create ~capacity:n_supplier ~name:"supplier" ~schema:supplier_schema () in
  for i = 0 to n_supplier - 1 do
    ignore
      (Table.insert supplier
         [|
           Int i;
           Str (Printf.sprintf "Supplier#%09d" i);
           Int (Prng.int prng (Array.length nations));
           Float (Prng.float prng 10999.98 -. 999.99);
         |])
  done;
  let n_customer = scaled 150_000 in
  let customer = Table.create ~capacity:n_customer ~name:"customer" ~schema:customer_schema () in
  for i = 0 to n_customer - 1 do
    let seg = Prng.int prng (Array.length market_segments) in
    ignore
      (Table.insert customer
         [|
           Int i;
           Str (Printf.sprintf "Customer#%09d" i);
           Int (Prng.int prng (Array.length nations));
           Str market_segments.(seg);
           Int seg;
           Float (Prng.float prng 10999.98 -. 999.99);
         |])
  done;
  let n_orders = scaled 1_500_000 in
  let orders = Table.create ~capacity:n_orders ~name:"orders" ~schema:orders_schema () in
  let orderdates = Array.make n_orders 0 in
  for i = 0 to n_orders - 1 do
    let orderdate = Prng.int prng (max_orderdate + 1) in
    orderdates.(i) <- orderdate;
    let status = [| "F"; "O"; "P" |].(Prng.int prng 3) in
    ignore
      (Table.insert orders
         [|
           Int i;
           Int (Prng.int prng n_customer);
           Str status;
           Float 0.0 (* patched conceptually by lineitem totals; unused by queries *);
           Int orderdate;
           Int (1 + Prng.int prng 5);
           Int 0;
         |])
  done;
  let lineitem = Table.create ~capacity:(n_orders * 4) ~name:"lineitem" ~schema:lineitem_schema () in
  for o = 0 to n_orders - 1 do
    let lines = 1 + Prng.int prng 7 in
    for ln = 0 to lines - 1 do
      let quantity = float_of_int (1 + Prng.int prng 50) in
      let price_per_unit = 900.0 +. Prng.float prng 99100.0 in
      let discount = float_of_int (Prng.int prng 11) /. 100.0 in
      let tax = float_of_int (Prng.int prng 9) /. 100.0 in
      let shipdate = orderdates.(o) + 1 + Prng.int prng 121 in
      let receipt = shipdate + 1 + Prng.int prng 30 in
      (* TPC-H: lineitems received before 1995-06-17 are flagged A or R,
         later ones N. *)
      let flag_id =
        if receipt <= Dates.of_ymd 1995 6 17 then if Prng.bool prng then 0 else 2
        else 1
      in
      ignore
        (Table.insert lineitem
           [|
             Int o;
             Int ln;
             Int (Prng.int prng n_supplier);
             Float quantity;
             Float (quantity *. price_per_unit /. 10.0);
             Float discount;
             Float tax;
             Str return_flags.(flag_id);
             Int flag_id;
             Int shipdate;
           |])
    done
  done;
  { region; nation; supplier; customer; orders; lineitem; sf }

let catalog d =
  let c = Catalog.create () in
  List.iter (Catalog.add_table c)
    [ d.region; d.nation; d.supplier; d.customer; d.orders; d.lineitem ];
  c

let total_rows d =
  Table.length d.region + Table.length d.nation + Table.length d.supplier
  + Table.length d.customer + Table.length d.orders + Table.length d.lineitem
