module Table = Wj_storage.Table
module Schema = Wj_storage.Schema
module Value = Wj_storage.Value
module Csv = Wj_storage.Csv

let fail line fmt = Printf.ksprintf (fun s -> raise (Csv.Csv_error (s, line))) fmt

let parse_int ~line text =
  match int_of_string_opt (String.trim text) with
  | Some n -> n
  | None -> fail line "expected an integer, got %S" text

let parse_float ~line text =
  match float_of_string_opt (String.trim text) with
  | Some f -> f
  | None -> fail line "expected a number, got %S" text

let parse_date ~line text =
  match String.split_on_char '-' (String.trim text) with
  | [ y; m; d ] -> (
    try Dates.of_ymd (parse_int ~line y) (parse_int ~line m) (parse_int ~line d)
    with Invalid_argument msg -> fail line "bad date %S: %s" text msg)
  | _ -> fail line "bad date %S" text

(* "1-URGENT" -> 1 *)
let parse_priority ~line text =
  match String.index_opt text '-' with
  | Some i -> parse_int ~line (String.sub text 0 i)
  | None -> parse_int ~line text

let segment_id ~line s =
  try Generator.segment_id s with Not_found -> fail line "unknown market segment %S" s

let returnflag_id ~line s =
  match Array.find_index (String.equal s) Generator.return_flags with
  | Some i -> i
  | None -> fail line "unknown return flag %S" s

(* Per-kind: (target schema builder, dbgen arity, row translator). *)
let translate kind ~line (fields : string array) =
  match kind with
  | `Region ->
    [| Value.Int (parse_int ~line fields.(0)); Value.Str fields.(1) |]
  | `Nation ->
    [|
      Value.Int (parse_int ~line fields.(0));
      Value.Str fields.(1);
      Value.Int (parse_int ~line fields.(2));
    |]
  | `Supplier ->
    [|
      Value.Int (parse_int ~line fields.(0));
      Value.Str fields.(1);
      Value.Int (parse_int ~line fields.(3));
      Value.Float (parse_float ~line fields.(5));
    |]
  | `Customer ->
    let seg = fields.(6) in
    [|
      Value.Int (parse_int ~line fields.(0));
      Value.Str fields.(1);
      Value.Int (parse_int ~line fields.(3));
      Value.Str seg;
      Value.Int (segment_id ~line seg);
      Value.Float (parse_float ~line fields.(5));
    |]
  | `Orders ->
    [|
      Value.Int (parse_int ~line fields.(0));
      Value.Int (parse_int ~line fields.(1));
      Value.Str fields.(2);
      Value.Float (parse_float ~line fields.(3));
      Value.Int (parse_date ~line fields.(4));
      Value.Int (parse_priority ~line fields.(5));
      Value.Int (parse_int ~line fields.(7));
    |]
  | `Lineitem ->
    let flag = fields.(8) in
    [|
      Value.Int (parse_int ~line fields.(0));
      Value.Int (parse_int ~line fields.(3));
      Value.Int (parse_int ~line fields.(2));
      Value.Float (parse_float ~line fields.(4));
      Value.Float (parse_float ~line fields.(5));
      Value.Float (parse_float ~line fields.(6));
      Value.Float (parse_float ~line fields.(7));
      Value.Str flag;
      Value.Int (returnflag_id ~line flag);
      Value.Int (parse_date ~line fields.(10));
    |]

let spec kind =
  match kind with
  | `Region -> ("region", Generator.region_schema, 3)
  | `Nation -> ("nation", Generator.nation_schema, 4)
  | `Supplier -> ("supplier", Generator.supplier_schema, 7)
  | `Customer -> ("customer", Generator.customer_schema, 8)
  | `Orders -> ("orders", Generator.orders_schema, 9)
  | `Lineitem -> ("lineitem", Generator.lineitem_schema, 16)

let load_table path kind =
  let name, schema, arity = spec kind in
  let table = Table.create ~name ~schema () in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let line_no = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr line_no;
           if String.trim line <> "" then begin
             let fields = Csv.split_line ~separator:'|' line in
             (* dbgen terminates every record with a trailing '|'. *)
             let fields =
               match List.rev fields with
               | "" :: rest -> Array.of_list (List.rev rest)
               | _ -> Array.of_list fields
             in
             if Array.length fields <> arity then
               fail !line_no "expected %d dbgen fields, got %d" arity
                 (Array.length fields);
             ignore (Table.insert table (translate kind ~line:!line_no fields))
           end
         done
       with End_of_file -> ());
      table)

let load_dir dir =
  let path name = Filename.concat dir (name ^ ".tbl") in
  let region = load_table (path "region") `Region in
  let nation = load_table (path "nation") `Nation in
  let supplier = load_table (path "supplier") `Supplier in
  let customer = load_table (path "customer") `Customer in
  let orders = load_table (path "orders") `Orders in
  let lineitem = load_table (path "lineitem") `Lineitem in
  {
    Generator.region;
    nation;
    supplier;
    customer;
    orders;
    lineitem;
    sf = float_of_int (Table.length orders) /. 1_500_000.0;
  }
