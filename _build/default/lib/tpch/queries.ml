module Query = Wj_core.Query
module Table = Wj_storage.Table
module Value = Wj_storage.Value

type spec = Q3 | Q7 | Q10

type variant =
  | Barebone
  | Standard
  | One_date of float
  | Scaled of float
  | Extra of Query.predicate list

let tables_of = function Q3 -> 3 | Q7 -> 6 | Q10 -> 4
let name_of = function Q3 -> "Q3" | Q7 -> "Q7" | Q10 -> "Q10"

let ci table name = Table.column_index table name

(* SUM(l_extendedprice * (1 - l_discount)) with lineitem at [pos]. *)
let revenue_expr lineitem pos =
  Query.Mul
    ( Query.Col (pos, ci lineitem "l_extendedprice"),
      Query.Sub (Query.Const 1.0, Query.Col (pos, ci lineitem "l_discount")) )

let eq (lp, lt, lc) (rp, rt, rc) =
  {
    Query.left = (lp, ci lt lc);
    right = (rp, ci rt rc);
    op = Query.Eq;
  }

(* A date cutoff keeping roughly fraction [f] of a uniform date column over
   [lo, hi]. *)
let cutoff_keeping lo hi f =
  let f = Float.max 0.0 (Float.min 1.0 f) in
  lo + int_of_float (Float.round (f *. float_of_int (hi - lo)))

let max_orderdate = Dates.max_day - 151
let max_shipdate = Dates.max_day - 30

let clamp_date d = max Dates.min_day (min Dates.max_day d)

(* --- Q3 --------------------------------------------------------------- *)

let q3_joins d =
  let c = d.Generator.customer and o = d.Generator.orders and l = d.Generator.lineitem in
  [ eq (0, c, "c_custkey") (1, o, "o_custkey"); eq (1, o, "o_orderkey") (2, l, "l_orderkey") ]

let q3_standard_preds d =
  let c = d.Generator.customer and o = d.Generator.orders and l = d.Generator.lineitem in
  let date = Dates.of_ymd 1995 3 15 in
  [
    Query.Cmp
      {
        table = 0;
        column = ci c "c_mktsegment_id";
        op = Query.Ceq;
        value = Value.Int (Generator.segment_id "BUILDING");
      };
    Query.Cmp
      { table = 1; column = ci o "o_orderdate"; op = Query.Clt; value = Value.Int date };
    Query.Cmp
      { table = 2; column = ci l "l_shipdate"; op = Query.Cgt; value = Value.Int date };
  ]

let q3_one_date d f =
  let o = d.Generator.orders in
  [
    Query.Cmp
      {
        table = 1;
        column = ci o "o_orderdate";
        op = Query.Cle;
        value = Value.Int (cutoff_keeping 0 max_orderdate f);
      };
  ]

(* Scaled Q3: same-direction date cutoffs, so the predicates remain
   jointly satisfiable at every f and the overall selectivity moves
   monotonically: the segment predicate is fixed, orders keep ~f of the
   date range, and lineitems must ship within f of the shipping window
   after the order cutoff. *)
let q3_scaled d f =
  let c = d.Generator.customer and o = d.Generator.orders and l = d.Generator.lineitem in
  let f = Float.max 0.01 (Float.min 1.0 f) in
  let o_cutoff = cutoff_keeping 0 max_orderdate f in
  let s_cutoff = clamp_date (o_cutoff + max 1 (int_of_float (121.0 *. f))) in
  [
    Query.Cmp
      {
        table = 0;
        column = ci c "c_mktsegment_id";
        op = Query.Ceq;
        value = Value.Int (Generator.segment_id "BUILDING");
      };
    Query.Cmp
      { table = 1; column = ci o "o_orderdate"; op = Query.Cle; value = Value.Int o_cutoff };
    Query.Cmp
      { table = 2; column = ci l "l_shipdate"; op = Query.Cle; value = Value.Int s_cutoff };
  ]

(* --- Q7 --------------------------------------------------------------- *)
(* Positions: 0 supplier, 1 lineitem, 2 orders, 3 customer, 4 nation (n1,
   supplier side), 5 nation (n2, customer side). *)

let q7_joins d =
  let s = d.Generator.supplier and l = d.Generator.lineitem and o = d.Generator.orders in
  let c = d.Generator.customer and n = d.Generator.nation in
  [
    eq (0, s, "s_suppkey") (1, l, "l_suppkey");
    eq (2, o, "o_orderkey") (1, l, "l_orderkey");
    eq (3, c, "c_custkey") (2, o, "o_custkey");
    eq (0, s, "s_nationkey") (4, n, "n_nationkey");
    eq (3, c, "c_nationkey") (5, n, "n_nationkey");
  ]

let q7_standard_preds d =
  let l = d.Generator.lineitem and n = d.Generator.nation in
  [
    Query.Cmp
      {
        table = 4;
        column = ci n "n_nationkey";
        op = Query.Ceq;
        value = Value.Int (Generator.nation_key "FRANCE");
      };
    Query.Cmp
      {
        table = 5;
        column = ci n "n_nationkey";
        op = Query.Ceq;
        value = Value.Int (Generator.nation_key "GERMANY");
      };
    Query.Between
      {
        table = 1;
        column = ci l "l_shipdate";
        lo = Value.Int (Dates.of_ymd 1995 1 1);
        hi = Value.Int (Dates.of_ymd 1996 12 31);
      };
  ]

let q7_one_date d f =
  let l = d.Generator.lineitem in
  [
    Query.Cmp
      {
        table = 1;
        column = ci l "l_shipdate";
        op = Query.Cle;
        value = Value.Int (cutoff_keeping 0 max_shipdate f);
      };
  ]

(* Scaled Q7: the nation equality pair is far too selective at bench scale
   (1/625 of pairs), so the knob widens both nation sets to ~f*25 nations
   and scales the shipdate window to fraction f of its span. *)
let q7_scaled d f =
  let l = d.Generator.lineitem and n = d.Generator.nation in
  let f = Float.max 0.01 (Float.min 1.0 f) in
  let nations = max 1 (int_of_float (Float.round (f *. 25.0))) in
  let ship_lo = Dates.of_ymd 1993 1 1 in
  let ship_hi = clamp_date (cutoff_keeping ship_lo Dates.max_day f) in
  [
    Query.Cmp
      { table = 4; column = ci n "n_nationkey"; op = Query.Clt; value = Value.Int nations };
    Query.Cmp
      { table = 5; column = ci n "n_nationkey"; op = Query.Clt; value = Value.Int nations };
    Query.Between
      {
        table = 1;
        column = ci l "l_shipdate";
        lo = Value.Int ship_lo;
        hi = Value.Int ship_hi;
      };
  ]

(* --- Q10 -------------------------------------------------------------- *)
(* Positions: 0 customer, 1 orders, 2 lineitem, 3 nation. *)

let q10_joins d =
  let c = d.Generator.customer and o = d.Generator.orders in
  let l = d.Generator.lineitem and n = d.Generator.nation in
  [
    eq (0, c, "c_custkey") (1, o, "o_custkey");
    eq (1, o, "o_orderkey") (2, l, "l_orderkey");
    eq (0, c, "c_nationkey") (3, n, "n_nationkey");
  ]

let q10_standard_preds d =
  let o = d.Generator.orders and l = d.Generator.lineitem in
  [
    Query.Between
      {
        table = 1;
        column = ci o "o_orderdate";
        lo = Value.Int (Dates.of_ymd 1993 10 1);
        hi = Value.Int (Dates.of_ymd 1993 12 31);
      };
    Query.Cmp
      { table = 2; column = ci l "l_returnflag_id"; op = Query.Ceq; value = Value.Int 2 };
  ]

let q10_one_date d f =
  let o = d.Generator.orders in
  [
    Query.Cmp
      {
        table = 1;
        column = ci o "o_orderdate";
        op = Query.Cle;
        value = Value.Int (cutoff_keeping 0 max_orderdate f);
      };
  ]

let q10_scaled d f =
  let o = d.Generator.orders and l = d.Generator.lineitem in
  let lo = Dates.of_ymd 1993 1 1 in
  let hi = clamp_date (cutoff_keeping lo max_orderdate f) in
  [
    Query.Between
      { table = 1; column = ci o "o_orderdate"; lo = Value.Int lo; hi = Value.Int hi };
    Query.Cmp
      { table = 2; column = ci l "l_returnflag_id"; op = Query.Ceq; value = Value.Int 2 };
  ]

(* --- assembly --------------------------------------------------------- *)

let build ?(variant = Barebone) ?(agg = Wj_stats.Estimator.Sum)
    ?(group_by_segment = false) spec d =
  let c = d.Generator.customer and l = d.Generator.lineitem in
  let tables, joins, lineitem_pos, customer_pos =
    match spec with
    | Q3 ->
      ( [ ("customer", c); ("orders", d.Generator.orders); ("lineitem", l) ],
        q3_joins d,
        2,
        Some 0 )
    | Q7 ->
      ( [
          ("supplier", d.Generator.supplier);
          ("lineitem", l);
          ("orders", d.Generator.orders);
          ("customer", c);
          ("n1", d.Generator.nation);
          ("n2", d.Generator.nation);
        ],
        q7_joins d,
        1,
        Some 3 )
    | Q10 ->
      ( [
          ("customer", c);
          ("orders", d.Generator.orders);
          ("lineitem", l);
          ("nation", d.Generator.nation);
        ],
        q10_joins d,
        2,
        Some 0 )
  in
  let predicates =
    match (variant, spec) with
    | Barebone, _ -> []
    | Extra ps, _ -> ps
    | Standard, Q3 -> q3_standard_preds d
    | Standard, Q7 -> q7_standard_preds d
    | Standard, Q10 -> q10_standard_preds d
    | One_date f, Q3 -> q3_one_date d f
    | One_date f, Q7 -> q7_one_date d f
    | One_date f, Q10 -> q10_one_date d f
    | Scaled f, Q3 -> q3_scaled d f
    | Scaled f, Q7 -> q7_scaled d f
    | Scaled f, Q10 -> q10_scaled d f
  in
  let group_by =
    if not group_by_segment then None
    else
      match (spec, customer_pos) with
      | Q7, _ -> invalid_arg "Queries.build: GROUP BY segment unsupported for Q7"
      | _, Some pos -> Some (pos, ci c "c_mktsegment")
      | _, None -> assert false
  in
  Query.make ~tables ~joins ~predicates ~group_by ~agg
    ~expr:(revenue_expr l lineitem_pos) ()

let registry ?ordered_predicates q =
  Wj_core.Registry.build_for_query ?ordered_predicates q
