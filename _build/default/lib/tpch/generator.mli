(** Deterministic TPC-H data generator.

    The paper's evaluation runs exclusively on TPC-H data (§5.1).  This
    generator reproduces the schema portions and distributions that the
    three benchmark queries (Q3, Q7, Q10) touch:

    - cardinalities scale linearly with the scale factor (SF 1.0 = 150 k
      customers, 1.5 M orders, ~6 M lineitems with 1-7 lines per order);
    - every join is a primary-key/foreign-key join with the fan-outs of the
      benchmark;
    - categorical columns (market segment, return flag, nation) carry both
      their string form and a dictionary-encoded integer twin (suffix
      [_id]) so selection predicates are Olken-sampleable.

    Everything derives from one integer seed; equal (sf, seed) pairs
    produce identical datasets. *)

type dataset = {
  region : Wj_storage.Table.t;
  nation : Wj_storage.Table.t;
  supplier : Wj_storage.Table.t;
  customer : Wj_storage.Table.t;
  orders : Wj_storage.Table.t;
  lineitem : Wj_storage.Table.t;
  sf : float;
}

val generate : ?seed:int -> sf:float -> unit -> dataset
(** Raises [Invalid_argument] when [sf <= 0]. *)

val catalog : dataset -> Wj_storage.Catalog.t
(** A catalog containing the six tables. *)

val market_segments : string array
(** The five TPC-H segments, index = dictionary id. *)

val segment_id : string -> int
(** Raises [Not_found] for unknown segments. *)

val return_flags : string array
(** [|"A"; "N"; "R"|], index = dictionary id. *)

val nations : string array
(** 25 nation names, index = nation key. *)

val nation_key : string -> int
(** Raises [Not_found]. *)

val total_rows : dataset -> int

(** The table schemas, shared with {!Tbl_loader} so dbgen files load into
    identical shapes. *)

val region_schema : Wj_storage.Schema.t
val nation_schema : Wj_storage.Schema.t
val supplier_schema : Wj_storage.Schema.t
val customer_schema : Wj_storage.Schema.t
val orders_schema : Wj_storage.Schema.t
val lineitem_schema : Wj_storage.Schema.t
