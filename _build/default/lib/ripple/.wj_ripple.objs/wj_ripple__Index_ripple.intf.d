lib/ripple/index_ripple.mli: Wj_core Wj_stats Wj_util
