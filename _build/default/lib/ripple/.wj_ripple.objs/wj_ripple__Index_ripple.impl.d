lib/ripple/index_ripple.ml: Array List Wj_core Wj_index Wj_stats Wj_storage Wj_util
