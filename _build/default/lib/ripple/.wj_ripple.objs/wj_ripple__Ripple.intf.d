lib/ripple/ripple.mli: Wj_core Wj_stats Wj_util
