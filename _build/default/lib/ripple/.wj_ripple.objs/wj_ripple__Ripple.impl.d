lib/ripple/ripple.ml: Array Float Fun Hashtbl List Queue Wj_core Wj_index Wj_stats Wj_storage Wj_util
