lib/iosim/cost_model.mli:
