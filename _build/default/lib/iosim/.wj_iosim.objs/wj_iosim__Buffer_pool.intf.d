lib/iosim/buffer_pool.mli:
