lib/iosim/buffer_pool.ml: Hashtbl
