lib/iosim/sim.ml: Buffer_pool Cost_model Wj_core Wj_util
