lib/iosim/sim.mli: Buffer_pool Cost_model Wj_core Wj_util
