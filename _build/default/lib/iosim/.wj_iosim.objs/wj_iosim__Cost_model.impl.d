lib/iosim/cost_model.ml:
