module Timer = Wj_util.Timer

type t = {
  model : Cost_model.t;
  pool : Buffer_pool.t;
  clock : Timer.t;
}

let create ?(model = Cost_model.default) ~pool_pages ~clock () =
  if not (Timer.is_virtual clock) then
    invalid_arg "Sim.create: clock must be virtual";
  { model; pool = Buffer_pool.create ~capacity:pool_pages; clock }

let model t = t.model
let pool t = t.pool
let clock t = t.clock

let charge_seconds t s = Timer.advance t.clock s

let touch_row t table row =
  let page = row / t.model.Cost_model.rows_per_page in
  if Buffer_pool.touch t.pool ~table ~page then
    charge_seconds t t.model.Cost_model.ram_access
  else charge_seconds t t.model.Cost_model.random_io

let walker_tracer t = function
  | Wj_core.Walker.Row_access (pos, row) -> touch_row t pos row
  | Wj_core.Walker.Index_probe (_, levels) ->
    charge_seconds t (float_of_int levels *. t.model.Cost_model.index_level_cost)

(* Random-order ripple scans its shuffled table in storage order — the
   first touch of each storage page pays one sequential I/O, later rows of
   the page are RAM accesses.  Index-assisted retrieval jumps around and
   pays random I/O per miss. *)
let ripple_tracer t ~pos ~slot ~sequential =
  let page = slot / t.model.Cost_model.rows_per_page in
  if Buffer_pool.touch t.pool ~table:pos ~page then
    charge_seconds t t.model.Cost_model.ram_access
  else
    charge_seconds t
      (if sequential then t.model.Cost_model.seq_io
       else t.model.Cost_model.random_io)

let charge_scan t ~rows = charge_seconds t (Cost_model.scan_seconds t.model ~rows)

let warm t ~table ~rows =
  let pages = Cost_model.pages_of_rows t.model rows in
  for page = 0 to pages - 1 do
    ignore (Buffer_pool.touch t.pool ~table ~page)
  done;
  Buffer_pool.reset_stats t.pool
