(** Recursive-descent parser for the online-aggregation SQL dialect. *)

exception Parse_error of string

val parse : string -> Ast.statement
(** Raises {!Parse_error} (or {!Lexer.Lex_error}) on malformed input. *)
