module Query = Wj_core.Query
module Catalog = Wj_storage.Catalog
module Table = Wj_storage.Table
module Schema = Wj_storage.Schema
module Value = Wj_storage.Value

exception Bind_error of string

type bound = {
  queries : (Ast.select_item * Query.t) list;
  online : bool;
  within_time : float option;
  confidence : float;
  report_interval : float option;
}

let err fmt = Printf.ksprintf (fun s -> raise (Bind_error s)) fmt

type scope = {
  tables : (string * Table.t) array; (* (alias, table) by position *)
}

let make_scope catalog from =
  let entries =
    List.map
      (fun (name, alias) ->
        match Catalog.table catalog name with
        | None -> err "unknown table %s" name
        | Some t -> (Option.value ~default:name alias, t))
      from
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (alias, _) ->
      if Hashtbl.mem seen alias then err "duplicate table alias %s" alias;
      Hashtbl.add seen alias ())
    entries;
  { tables = Array.of_list entries }

(* Resolve a column reference to (position, column index, type). *)
let resolve scope (r : Ast.column_ref) =
  match r.table with
  | Some alias -> (
    let found = ref None in
    Array.iteri
      (fun i (a, t) -> if a = alias && !found = None then found := Some (i, t))
      scope.tables;
    match !found with
    | None -> err "unknown table alias %s" alias
    | Some (pos, t) -> (
      match Schema.find (Table.schema t) r.column with
      | None -> err "table %s has no column %s" alias r.column
      | Some col -> (pos, col, Schema.ty_of (Table.schema t) col)))
  | None -> (
    let matches = ref [] in
    Array.iteri
      (fun i (_, t) ->
        match Schema.find (Table.schema t) r.column with
        | Some col -> matches := (i, col, Schema.ty_of (Table.schema t) col) :: !matches
        | None -> ())
      scope.tables;
    match !matches with
    | [ m ] -> m
    | [] -> err "unknown column %s" r.column
    | _ :: _ :: _ -> err "ambiguous column %s (qualify it)" r.column)

let literal_to_float = function
  | Ast.L_int n -> float_of_int n
  | Ast.L_float f -> f
  | Ast.L_date d -> float_of_int d
  | Ast.L_string s -> err "string literal '%s' in arithmetic expression" s

let rec bind_expr scope = function
  | Ast.E_col r ->
    let pos, col, ty = resolve scope r in
    (match ty with
    | Value.TInt | Value.TFloat -> ()
    | Value.TStr -> err "column %s is not numeric" r.column);
    Query.Col (pos, col)
  | Ast.E_lit l -> Query.Const (literal_to_float l)
  | Ast.E_neg e -> Query.Neg (bind_expr scope e)
  | Ast.E_add (a, b) -> Query.Add (bind_expr scope a, bind_expr scope b)
  | Ast.E_sub (a, b) -> Query.Sub (bind_expr scope a, bind_expr scope b)
  | Ast.E_mul (a, b) -> Query.Mul (bind_expr scope a, bind_expr scope b)
  | Ast.E_div (a, b) -> Query.Div (bind_expr scope a, bind_expr scope b)

let literal_to_value column ty (l : Ast.literal) =
  match (ty, l) with
  | Value.TInt, Ast.L_int n -> Value.Int n
  | Value.TInt, Ast.L_date d -> Value.Int d
  | Value.TFloat, Ast.L_float f -> Value.Float f
  | Value.TFloat, Ast.L_int n -> Value.Float (float_of_int n)
  | Value.TStr, Ast.L_string s -> Value.Str s
  | _, _ -> err "literal type does not match column %s" column

let cmp_of = function
  | Ast.Op_eq -> Query.Ceq
  | Ast.Op_ne -> Query.Cne
  | Ast.Op_lt -> Query.Clt
  | Ast.Op_le -> Query.Cle
  | Ast.Op_gt -> Query.Cgt
  | Ast.Op_ge -> Query.Cge

let bind_condition scope = function
  | Ast.C_join (a, b) ->
    let (lp, lc, lty) = resolve scope a and (rp, rc, rty) = resolve scope b in
    if lp = rp then err "join condition %s = %s stays within one table" a.column b.column;
    if lty <> Value.TInt || rty <> Value.TInt then
      err "join columns must be integer-typed (%s = %s)" a.column b.column;
    `Join { Query.left = (lp, lc); right = (rp, rc); op = Query.Eq }
  | Ast.C_cmp (r, op, l) ->
    let pos, col, ty = resolve scope r in
    `Pred (Query.Cmp { table = pos; column = col; op = cmp_of op; value = literal_to_value r.column ty l })
  | Ast.C_between (r, lo, hi) ->
    let pos, col, ty = resolve scope r in
    `Pred
      (Query.Between
         {
           table = pos;
           column = col;
           lo = literal_to_value r.column ty lo;
           hi = literal_to_value r.column ty hi;
         })
  | Ast.C_band (a, b, lo, hi) ->
    let (ap, ac, aty) = resolve scope a and (bp, bc, bty) = resolve scope b in
    if ap = bp then err "band join %s/%s stays within one table" a.column b.column;
    if aty <> Value.TInt || bty <> Value.TInt then
      err "band join columns must be integer-typed (%s, %s)" a.column b.column;
    (* a BETWEEN b + lo AND b + hi  <=>  a - b in [lo, hi]. *)
    `Join { Query.left = (bp, bc); right = (ap, ac); op = Query.Band { lo; hi } }
  | Ast.C_in (r, ls) ->
    let pos, col, ty = resolve scope r in
    `Pred
      (Query.Member
         { table = pos; column = col; values = List.map (literal_to_value r.column ty) ls })

let agg_of = function
  | Ast.A_sum -> Wj_stats.Estimator.Sum
  | Ast.A_count -> Wj_stats.Estimator.Count
  | Ast.A_avg -> Wj_stats.Estimator.Avg
  | Ast.A_variance -> Wj_stats.Estimator.Variance
  | Ast.A_stdev -> Wj_stats.Estimator.Stdev

let bind catalog (s : Ast.statement) =
  if s.items = [] then err "no aggregates selected";
  let scope = make_scope catalog s.from in
  let joins, predicates =
    List.fold_left
      (fun (js, ps) cond ->
        match bind_condition scope cond with
        | `Join j -> (j :: js, ps)
        | `Pred p -> (js, p :: ps))
      ([], []) s.where
  in
  let joins = List.rev joins and predicates = List.rev predicates in
  let group_by =
    match s.group_by with
    | None -> None
    | Some r ->
      let pos, col, _ = resolve scope r in
      Some (pos, col)
  in
  let tables = Array.to_list scope.tables in
  let queries =
    List.map
      (fun (item : Ast.select_item) ->
        let expr =
          match item.arg with
          | None -> Query.Const 1.0
          | Some e -> bind_expr scope e
        in
        let q =
          try
            Query.make ~tables ~joins ~predicates ~group_by ~agg:(agg_of item.agg)
              ~expr ()
          with Invalid_argument msg -> err "%s" msg
        in
        (item, q))
      s.items
  in
  {
    queries;
    online = s.online;
    within_time = s.within_time;
    confidence =
      (match s.confidence with
      | None -> 0.95
      | Some c ->
        let c = if c > 1.0 then c /. 100.0 else c in
        if c <= 0.0 || c >= 1.0 then err "confidence out of range" else c);
    report_interval = s.report_interval;
  }
