lib/sql/engine.mli: Ast Wj_core Wj_exec Wj_storage
