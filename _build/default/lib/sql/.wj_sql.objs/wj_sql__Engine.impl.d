lib/sql/engine.ml: Ast Binder Buffer Format List Option Parser Printf Wj_core Wj_exec Wj_storage
