lib/sql/ast.ml: Format Wj_storage
