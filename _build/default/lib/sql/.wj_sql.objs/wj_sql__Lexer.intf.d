lib/sql/lexer.mli:
