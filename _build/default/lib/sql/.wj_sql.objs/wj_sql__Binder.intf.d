lib/sql/binder.mli: Ast Wj_core Wj_storage
