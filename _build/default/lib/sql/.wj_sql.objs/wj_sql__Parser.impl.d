lib/sql/parser.ml: Array Ast Lexer List Printf String Wj_storage
