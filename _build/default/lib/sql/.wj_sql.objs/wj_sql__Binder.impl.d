lib/sql/binder.ml: Array Ast Hashtbl List Option Printf Wj_core Wj_stats Wj_storage
