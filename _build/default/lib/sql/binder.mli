(** Name resolution: AST -> executable {!Wj_core.Query} values.

    A statement with several aggregates binds to several queries sharing
    the same tables, joins and predicates (they are executed against a
    shared index registry). *)

exception Bind_error of string

type bound = {
  queries : (Ast.select_item * Wj_core.Query.t) list;
  online : bool;
  within_time : float option;
  confidence : float;  (** fraction, default 0.95 (input is a percentage) *)
  report_interval : float option;
}

val bind : Wj_storage.Catalog.t -> Ast.statement -> bound
(** Raises {!Bind_error} on unknown tables/columns, ambiguous bare columns,
    type mismatches, or non-integer join columns. *)
