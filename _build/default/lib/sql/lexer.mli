(** Hand-written lexer for the SQL dialect. *)

type token =
  | IDENT of string  (** unquoted identifier, lower-cased *)
  | KEYWORD of string  (** recognised keyword, upper-cased *)
  | INT of int
  | FLOAT of float
  | STRING of string  (** contents of a '...' literal *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Lex_error of string * int  (** message, character offset *)

val tokenize : string -> token list
(** Raises {!Lex_error} on malformed input (unterminated string, stray
    character). *)

val token_to_string : token -> string
