(** Abstract syntax of the online-aggregation SQL dialect.

    The grammar mirrors the paper's PostgreSQL extension (§5.3):

    {v
    SELECT [ONLINE] agg(expr) [, agg(expr) ...]
    FROM table [alias] [, table [alias] ...]
    [WHERE cond [AND cond ...]]
    [GROUP BY column]
    [WITHINTIME seconds] [CONFIDENCE percent] [REPORTINTERVAL seconds]
    v} *)

type column_ref = { table : string option; column : string }

type literal =
  | L_int of int
  | L_float of float
  | L_string of string
  | L_date of int  (** day offset, parsed from DATE 'yyyy-mm-dd' *)

type expr =
  | E_col of column_ref
  | E_lit of literal
  | E_neg of expr
  | E_add of expr * expr
  | E_sub of expr * expr
  | E_mul of expr * expr
  | E_div of expr * expr

type agg_kind = A_sum | A_count | A_avg | A_variance | A_stdev

type select_item = { agg : agg_kind; arg : expr option }
(** [arg = None] only for [COUNT] of star. *)

type comparison = Op_eq | Op_ne | Op_lt | Op_le | Op_gt | Op_ge

type condition =
  | C_join of column_ref * column_ref  (** col = col *)
  | C_cmp of column_ref * comparison * literal
  | C_between of column_ref * literal * literal
  | C_band of column_ref * column_ref * int * int
      (** [C_band (a, b, lo, hi)]: a BETWEEN b + lo AND b + hi — a band
          (theta) join *)
  | C_in of column_ref * literal list

type statement = {
  online : bool;
  items : select_item list;
  from : (string * string option) list;  (** (table, alias) *)
  where : condition list;
  group_by : column_ref option;
  within_time : float option;
  confidence : float option;  (** e.g. 95.0 *)
  report_interval : float option;
}

val agg_name : agg_kind -> string
val pp_expr : Format.formatter -> expr -> unit
val pp_condition : Format.formatter -> condition -> unit
val pp_statement : Format.formatter -> statement -> unit
