type column_ref = { table : string option; column : string }

type literal =
  | L_int of int
  | L_float of float
  | L_string of string
  | L_date of int

type expr =
  | E_col of column_ref
  | E_lit of literal
  | E_neg of expr
  | E_add of expr * expr
  | E_sub of expr * expr
  | E_mul of expr * expr
  | E_div of expr * expr

type agg_kind = A_sum | A_count | A_avg | A_variance | A_stdev

type select_item = { agg : agg_kind; arg : expr option }

type comparison = Op_eq | Op_ne | Op_lt | Op_le | Op_gt | Op_ge

type condition =
  | C_join of column_ref * column_ref
  | C_cmp of column_ref * comparison * literal
  | C_between of column_ref * literal * literal
  | C_band of column_ref * column_ref * int * int
  | C_in of column_ref * literal list

type statement = {
  online : bool;
  items : select_item list;
  from : (string * string option) list;
  where : condition list;
  group_by : column_ref option;
  within_time : float option;
  confidence : float option;
  report_interval : float option;
}

let pp_col fmt { table; column } =
  match table with
  | Some t -> Format.fprintf fmt "%s.%s" t column
  | None -> Format.fprintf fmt "%s" column

let pp_lit fmt = function
  | L_int n -> Format.fprintf fmt "%d" n
  | L_float f -> Format.fprintf fmt "%g" f
  | L_string s -> Format.fprintf fmt "'%s'" s
  | L_date d -> Format.fprintf fmt "DATE '%s'" (Wj_storage.Date_codec.to_string d)

let agg_name = function
  | A_sum -> "SUM"
  | A_count -> "COUNT"
  | A_avg -> "AVG"
  | A_variance -> "VARIANCE"
  | A_stdev -> "STDEV"

let rec pp_expr fmt = function
  | E_col c -> pp_col fmt c
  | E_lit l -> pp_lit fmt l
  | E_neg e -> Format.fprintf fmt "(-%a)" pp_expr e
  | E_add (a, b) -> Format.fprintf fmt "(%a + %a)" pp_expr a pp_expr b
  | E_sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp_expr a pp_expr b
  | E_mul (a, b) -> Format.fprintf fmt "(%a * %a)" pp_expr a pp_expr b
  | E_div (a, b) -> Format.fprintf fmt "(%a / %a)" pp_expr a pp_expr b

let cmp_name = function
  | Op_eq -> "="
  | Op_ne -> "<>"
  | Op_lt -> "<"
  | Op_le -> "<="
  | Op_gt -> ">"
  | Op_ge -> ">="

let pp_condition fmt = function
  | C_join (a, b) -> Format.fprintf fmt "%a = %a" pp_col a pp_col b
  | C_cmp (c, op, l) -> Format.fprintf fmt "%a %s %a" pp_col c (cmp_name op) pp_lit l
  | C_between (c, lo, hi) ->
    Format.fprintf fmt "%a BETWEEN %a AND %a" pp_col c pp_lit lo pp_lit hi
  | C_band (a, b, lo, hi) ->
    let off fmt o =
      if o >= 0 then Format.fprintf fmt "+ %d" o else Format.fprintf fmt "- %d" (-o)
    in
    Format.fprintf fmt "%a BETWEEN %a %a AND %a %a" pp_col a pp_col b off lo pp_col b
      off hi
  | C_in (c, ls) ->
    Format.fprintf fmt "%a IN (%a)" pp_col c
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
         pp_lit)
      ls

let pp_statement fmt s =
  Format.fprintf fmt "SELECT %s%a FROM %a"
    (if s.online then "ONLINE " else "")
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
       (fun fmt { agg; arg } ->
         match arg with
         | None -> Format.fprintf fmt "%s(*)" (agg_name agg)
         | Some e -> Format.fprintf fmt "%s(%a)" (agg_name agg) pp_expr e))
    s.items
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
       (fun fmt (t, a) ->
         match a with
         | None -> Format.fprintf fmt "%s" t
         | Some a -> Format.fprintf fmt "%s %s" t a))
    s.from;
  if s.where <> [] then
    Format.fprintf fmt " WHERE %a"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt " AND ")
         pp_condition)
      s.where;
  (match s.group_by with
  | Some c -> Format.fprintf fmt " GROUP BY %a" pp_col c
  | None -> ());
  (match s.within_time with
  | Some t -> Format.fprintf fmt " WITHINTIME %g" t
  | None -> ());
  (match s.confidence with
  | Some c -> Format.fprintf fmt " CONFIDENCE %g" c
  | None -> ());
  match s.report_interval with
  | Some r -> Format.fprintf fmt " REPORTINTERVAL %g" r
  | None -> ()
