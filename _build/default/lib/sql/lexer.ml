type token =
  | IDENT of string
  | KEYWORD of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Lex_error of string * int

let keywords =
  [
    "SELECT"; "ONLINE"; "FROM"; "WHERE"; "AND"; "GROUP"; "BY"; "BETWEEN"; "IN";
    "SUM"; "COUNT"; "AVG"; "AVE"; "VARIANCE"; "STDEV"; "DATE"; "WITHINTIME";
    "CONFIDENCE"; "REPORTINTERVAL"; "AS";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      let word = String.sub input start (!i - start) in
      let upper = String.uppercase_ascii word in
      if List.mem upper keywords then emit (KEYWORD upper)
      else emit (IDENT (String.lowercase_ascii word))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      if !i < n && input.[!i] = '.' && !i + 1 < n && is_digit input.[!i + 1] then begin
        incr i;
        while !i < n && is_digit input.[!i] do
          incr i
        done;
        emit (FLOAT (float_of_string (String.sub input start (!i - start))))
      end
      else emit (INT (int_of_string (String.sub input start (!i - start))))
    end
    else if c = '\'' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && input.[!j] <> '\'' do
        incr j
      done;
      if !j >= n then raise (Lex_error ("unterminated string literal", !i));
      emit (STRING (String.sub input start (!j - start)));
      i := !j + 1
    end
    else begin
      let two = if !i + 1 < n then String.sub input !i 2 else "" in
      match two with
      | "<>" | "!=" ->
        emit NE;
        i := !i + 2
      | "<=" ->
        emit LE;
        i := !i + 2
      | ">=" ->
        emit GE;
        i := !i + 2
      | _ ->
        (match c with
        | '(' -> emit LPAREN
        | ')' -> emit RPAREN
        | ',' -> emit COMMA
        | '.' -> emit DOT
        | '*' -> emit STAR
        | '+' -> emit PLUS
        | '-' -> emit MINUS
        | '/' -> emit SLASH
        | '=' -> emit EQ
        | '<' -> emit LT
        | '>' -> emit GT
        | _ -> raise (Lex_error (Printf.sprintf "unexpected character %c" c, !i)));
        incr i
    end
  done;
  List.rev (EOF :: !tokens)

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %s" s
  | KEYWORD s -> s
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "'%s'" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | STAR -> "*"
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "end of input"
