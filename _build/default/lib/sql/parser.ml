exception Parse_error of string

type state = { tokens : Lexer.token array; mutable pos : int }

let peek st = st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st what =
  raise
    (Parse_error
       (Printf.sprintf "expected %s but found %s" what
          (Lexer.token_to_string (peek st))))

let expect st tok what =
  if peek st = tok then advance st else fail st what

let keyword st kw = expect st (Lexer.KEYWORD kw) kw

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let accept_keyword st kw = accept st (Lexer.KEYWORD kw)

let ident st =
  match peek st with
  | Lexer.IDENT name ->
    advance st;
    name
  | _ -> fail st "an identifier"

(* column: ident | ident.ident *)
let column_ref st =
  let first = ident st in
  if accept st Lexer.DOT then { Ast.table = Some first; column = ident st }
  else { Ast.table = None; column = first }

let number st =
  match peek st with
  | Lexer.INT n ->
    advance st;
    float_of_int n
  | Lexer.FLOAT f ->
    advance st;
    f
  | _ -> fail st "a number"

let date_literal st =
  match peek st with
  | Lexer.STRING s -> (
    advance st;
    match String.split_on_char '-' s with
    | [ y; m; d ] -> (
      try Ast.L_date (Wj_storage.Date_codec.of_ymd (int_of_string y) (int_of_string m) (int_of_string d))
      with Invalid_argument msg | Failure msg ->
        raise (Parse_error ("bad date literal: " ^ msg)))
    | _ -> raise (Parse_error ("bad date literal: " ^ s)))
  | _ -> fail st "a date string"

let literal st =
  match peek st with
  | Lexer.INT n ->
    advance st;
    Ast.L_int n
  | Lexer.FLOAT f ->
    advance st;
    Ast.L_float f
  | Lexer.STRING s ->
    advance st;
    Ast.L_string s
  | Lexer.KEYWORD "DATE" ->
    advance st;
    date_literal st
  | Lexer.MINUS -> (
    advance st;
    match peek st with
    | Lexer.INT n ->
      advance st;
      Ast.L_int (-n)
    | Lexer.FLOAT f ->
      advance st;
      Ast.L_float (-.f)
    | _ -> fail st "a number after unary minus")
  | _ -> fail st "a literal"

(* Arithmetic expressions with the usual precedence. *)
let rec expr st =
  let left = term st in
  let rec loop acc =
    if accept st Lexer.PLUS then loop (Ast.E_add (acc, term st))
    else if accept st Lexer.MINUS then loop (Ast.E_sub (acc, term st))
    else acc
  in
  loop left

and term st =
  let left = factor st in
  let rec loop acc =
    if accept st Lexer.STAR then loop (Ast.E_mul (acc, factor st))
    else if accept st Lexer.SLASH then loop (Ast.E_div (acc, factor st))
    else acc
  in
  loop left

and factor st =
  match peek st with
  | Lexer.LPAREN ->
    advance st;
    let e = expr st in
    expect st Lexer.RPAREN ")";
    e
  | Lexer.MINUS ->
    advance st;
    Ast.E_neg (factor st)
  | Lexer.INT _ | Lexer.FLOAT _ | Lexer.STRING _ | Lexer.KEYWORD "DATE" ->
    Ast.E_lit (literal st)
  | Lexer.IDENT _ -> Ast.E_col (column_ref st)
  | _ -> fail st "an expression"

let agg_kind st =
  match peek st with
  | Lexer.KEYWORD "SUM" ->
    advance st;
    Ast.A_sum
  | Lexer.KEYWORD "COUNT" ->
    advance st;
    Ast.A_count
  | Lexer.KEYWORD ("AVG" | "AVE") ->
    advance st;
    Ast.A_avg
  | Lexer.KEYWORD "VARIANCE" ->
    advance st;
    Ast.A_variance
  | Lexer.KEYWORD "STDEV" ->
    advance st;
    Ast.A_stdev
  | _ -> fail st "an aggregate (SUM/COUNT/AVG/VARIANCE/STDEV)"

let select_item st =
  let agg = agg_kind st in
  expect st Lexer.LPAREN "(";
  let arg =
    if peek st = Lexer.STAR then begin
      advance st;
      if agg <> Ast.A_count then
        raise (Parse_error "only COUNT accepts * as its argument");
      None
    end
    else Some (expr st)
  in
  expect st Lexer.RPAREN ")";
  { Ast.agg; arg }

let from_item st =
  let table = ident st in
  ignore (accept_keyword st "AS");
  match peek st with
  | Lexer.IDENT alias ->
    advance st;
    (table, Some alias)
  | _ -> (table, None)

let comparison_of_token = function
  | Lexer.EQ -> Some Ast.Op_eq
  | Lexer.NE -> Some Ast.Op_ne
  | Lexer.LT -> Some Ast.Op_lt
  | Lexer.LE -> Some Ast.Op_le
  | Lexer.GT -> Some Ast.Op_gt
  | Lexer.GE -> Some Ast.Op_ge
  | _ -> None

(* A BETWEEN bound: a literal, or a column with an optional +/- integer
   offset (the band-join form). *)
type between_bound =
  | B_lit of Ast.literal
  | B_col of Ast.column_ref * int

let between_bound st =
  match peek st with
  | Lexer.IDENT _ ->
    let col = column_ref st in
    let offset =
      if accept st Lexer.PLUS then
        match peek st with
        | Lexer.INT n ->
          advance st;
          n
        | _ -> fail st "an integer offset"
      else if accept st Lexer.MINUS then begin
        match peek st with
        | Lexer.INT n ->
          advance st;
          -n
        | _ -> fail st "an integer offset"
      end
      else 0
    in
    B_col (col, offset)
  | _ -> B_lit (literal st)

let condition st =
  let lhs = column_ref st in
  if accept_keyword st "BETWEEN" then begin
    let lo = between_bound st in
    keyword st "AND";
    let hi = between_bound st in
    match (lo, hi) with
    | B_lit lo, B_lit hi -> Ast.C_between (lhs, lo, hi)
    | B_col (c1, o1), B_col (c2, o2) ->
      if c1 <> c2 then
        raise (Parse_error "band join bounds must reference the same column");
      if o1 > o2 then raise (Parse_error "band join with empty range");
      Ast.C_band (lhs, c1, o1, o2)
    | _ ->
      raise (Parse_error "BETWEEN bounds must be both literals or both columns")
  end
  else if accept_keyword st "IN" then begin
    expect st Lexer.LPAREN "(";
    let rec items acc =
      let l = literal st in
      if accept st Lexer.COMMA then items (l :: acc) else List.rev (l :: acc)
    in
    let ls = items [] in
    expect st Lexer.RPAREN ")";
    Ast.C_in (lhs, ls)
  end
  else begin
    match comparison_of_token (peek st) with
    | Some op -> (
      advance st;
      match peek st with
      | Lexer.IDENT _ ->
        if op <> Ast.Op_eq then
          raise (Parse_error "column-to-column conditions must use =");
        Ast.C_join (lhs, column_ref st)
      | _ -> Ast.C_cmp (lhs, op, literal st))
    | None -> fail st "a comparison operator, BETWEEN or IN"
  end

let parse input =
  let st = { tokens = Array.of_list (Lexer.tokenize input); pos = 0 } in
  keyword st "SELECT";
  let online = accept_keyword st "ONLINE" in
  let rec select_items acc =
    let item = select_item st in
    if accept st Lexer.COMMA then select_items (item :: acc)
    else List.rev (item :: acc)
  in
  let items = select_items [] in
  keyword st "FROM";
  let rec from_items acc =
    let item = from_item st in
    if accept st Lexer.COMMA then from_items (item :: acc) else List.rev (item :: acc)
  in
  let from = from_items [] in
  let where =
    if accept_keyword st "WHERE" then begin
      let rec conds acc =
        let c = condition st in
        if accept_keyword st "AND" then conds (c :: acc) else List.rev (c :: acc)
      in
      conds []
    end
    else []
  in
  let group_by =
    if accept_keyword st "GROUP" then begin
      keyword st "BY";
      Some (column_ref st)
    end
    else None
  in
  let within_time = if accept_keyword st "WITHINTIME" then Some (number st) else None in
  let confidence = if accept_keyword st "CONFIDENCE" then Some (number st) else None in
  let report_interval =
    if accept_keyword st "REPORTINTERVAL" then Some (number st) else None
  in
  expect st Lexer.EOF "end of input";
  {
    Ast.online;
    items;
    from;
    where;
    group_by;
    within_time;
    confidence;
    report_interval;
  }
