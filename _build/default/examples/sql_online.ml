(* The SQL interface — the paper's PostgreSQL-extension syntax (§5.3):

   SELECT ONLINE ... WITHINTIME 3 CONFIDENCE 95 REPORTINTERVAL 1

   executed against generated TPC-H data through the parser, binder and
   online executor.

   Run with: dune exec examples/sql_online.exe *)

let () =
  let d = Wj_tpch.Generator.generate ~sf:0.02 () in
  let catalog = Wj_tpch.Generator.catalog d in

  let sql =
    {|
    SELECT ONLINE
        SUM(l_extendedprice * (1 - l_discount)), COUNT(*)
    FROM customer, orders, lineitem
    WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey
      AND l_orderkey = o_orderkey
      AND o_orderdate < DATE '1995-03-15'
    WITHINTIME 3 CONFIDENCE 95 REPORTINTERVAL 1
    |}
  in
  Printf.printf "executing:\n%s\n" sql;
  let r = Wj_sql.Engine.execute ~on_report:print_endline catalog sql in
  Printf.printf "\nfinal answers:\n%s" (Wj_sql.Engine.render r);

  Printf.printf "\nand the exact version of the same statement:\n";
  let exact =
    Wj_sql.Engine.execute catalog
      {|
      SELECT SUM(l_extendedprice * (1 - l_discount)), COUNT(*)
      FROM customer, orders, lineitem
      WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey
        AND l_orderkey = o_orderkey
        AND o_orderdate < DATE '1995-03-15'
      |}
  in
  print_string (Wj_sql.Engine.render exact)
