examples/sql_online.ml: Printf Wj_sql Wj_tpch
