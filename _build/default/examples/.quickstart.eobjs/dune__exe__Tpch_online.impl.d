examples/tpch_online.ml: Float Printf Wj_core Wj_exec Wj_stats Wj_tpch Wj_util
