examples/band_join.ml: Printf Wj_core Wj_exec Wj_sql Wj_storage Wj_util
