examples/tpch_online.mli:
