examples/cyclic_triangle.ml: Array List Printf String Wj_core Wj_exec Wj_index Wj_storage Wj_util
