examples/band_join.mli:
