examples/quickstart.mli:
