examples/quickstart.ml: Float Printf Wj_core Wj_exec Wj_stats Wj_storage Wj_util
