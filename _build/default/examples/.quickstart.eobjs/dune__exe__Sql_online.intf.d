examples/sql_online.mli:
