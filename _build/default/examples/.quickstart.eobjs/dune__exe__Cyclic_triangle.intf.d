examples/cyclic_triangle.mli:
