examples/groupby_segments.ml: Array Float List Printf Wj_core Wj_exec Wj_storage Wj_tpch
