examples/groupby_segments.mli:
